// Package sched is the power-aware scheduler loop the paper's
// ensemble-management motivation asks for: each simulated interval it
// turns the trickle-down estimator's fleet snapshot — and nothing else;
// measured rails are never an input — into placement and eviction
// decisions. It grows cluster.PlanConsolidation (a one-shot largest-
// first eviction sort) into a real scheduler:
//
//   - Budget enforcement: when the fleet's estimated draw exceeds the
//     budget, load is shed largest-consumer-first until it fits.
//   - Energy-proportional consolidation: when the fleet fits, nodes with
//     little dynamic load are migrated onto busier hosts and powered
//     down, trading a one-time migration cost for the evicted node's
//     idle floor every subsequent second (the energy-proportional
//     subsystem-management literature's core move).
//   - A hard "never overload survivors" constraint: a migration happens
//     only onto a host with enough free hardware threads and enough
//     Watts headroom below its capacity; load that fits nowhere is shed
//     (powered down unplaced) under budget pressure and simply left
//     alone during consolidation.
//   - Quarantine awareness: an unhealthy node (cluster quarantine,
//     ErrNodeFailed) has unknown draw — it is neither a migration source
//     nor a host, and it counts toward nothing.
//
// Every choice breaks ties toward the earlier node in fleet insertion
// order, so a decision is a pure deterministic function of the input
// slice — the property the cluster layer's bit-for-bit reproducibility
// contract extends through the scheduler.
//
// The package is deliberately simulation-free: Plan consumes a value
// snapshot ([]NodeInfo) and emits a Decision; the caller (an operator
// loop, examples/fleet, a benchmark) actuates it through
// cluster.SetPowered and whatever placement machinery it owns. Busiest-
// first one-by-one placement follows the k8s-cluster-simulator proposed
// scheduler's loop shape.
package sched

import (
	"fmt"
	"math"
	"strings"
)

// NodeInfo is the scheduler's view of one node, derived entirely from
// estimator output plus static inventory (capacities, thread counts).
type NodeInfo struct {
	// Name identifies the node.
	Name string
	// Watts is the node's current estimated draw.
	Watts float64
	// IdleWatts is the node's estimated idle floor — what powering it
	// down saves beyond its migrated load. Static inventory calibrated
	// once per hardware configuration (through the estimator, not the
	// rails).
	IdleWatts float64
	// CapacityWatts is the node's safe sustained draw; a migration never
	// pushes a host's projected draw above it.
	CapacityWatts float64
	// UsedThreads is how many hardware threads the node's own load
	// occupies — what a host must absorb to take this node's work.
	UsedThreads int
	// FreeThreads is how many hardware threads the node has available
	// for migrated-in load.
	FreeThreads int
	// Healthy is false for quarantined nodes: unknown draw, excluded
	// from totals, never a source or host.
	Healthy bool
}

// dynamic is the node's load above its idle floor — what actually moves
// in a migration. Clamped at zero so a noisy estimate below the idle
// floor cannot project a host's draw downward.
func (n *NodeInfo) dynamic() float64 {
	return math.Max(0, n.Watts-n.IdleWatts)
}

// Action is one scheduling decision: power Node down, moving its load to
// Host. An empty Host means the load is shed (powered down unplaced) —
// only ever done under budget pressure when no survivor can take it.
type Action struct {
	// Node is the evicted node.
	Node string
	// Host receives the evicted node's load; empty means shed.
	Host string
	// DeltaWatts is the dynamic load the migration adds to the host; for
	// a shed it is the node's whole dropped draw.
	DeltaWatts float64
	// Threads is how many of the host's free threads the load occupies.
	Threads int
	// Reason is "budget" (shed to fit the budget) or "consolidate"
	// (energy-proportional packing).
	Reason string
}

// String renders the action as a stable single line for logs and
// deterministic example output.
func (a Action) String() string {
	if a.Host == "" {
		return fmt.Sprintf("power-off %s (%s, shed %.1f W unplaced)", a.Node, a.Reason, a.DeltaWatts)
	}
	return fmt.Sprintf("migrate %s -> %s (%s, +%.1f W, %d threads)", a.Node, a.Host, a.Reason, a.DeltaWatts, a.Threads)
}

// Decision is the scheduler's output for one interval.
type Decision struct {
	// Actions in decision order (apply in order; later actions assume
	// earlier ones happened).
	Actions []Action
	// Projected is the fleet's estimated draw after applying every
	// action (healthy powered-on survivors only).
	Projected float64
	// Fits reports whether Projected meets the budget.
	Fits bool
	// SavedWatts is the steady-state draw reduction versus doing
	// nothing.
	SavedWatts float64
	// MigrationJ is the one-time energy cost of the decision's
	// migrations (Config.MigrationCostJ each).
	MigrationJ float64
}

// Summary renders the decision as one stable line.
func (d Decision) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "actions=%d projected=%.1fW fits=%v saved=%.1fW migrationJ=%.0f",
		len(d.Actions), d.Projected, d.Fits, d.SavedWatts, d.MigrationJ)
	return b.String()
}

// Config parameterizes Plan.
type Config struct {
	// BudgetWatts is the fleet cap the paper's ensemble manager enforces.
	// Zero or negative means no budget (consolidation only).
	BudgetWatts float64
	// MigrationCostJ is the one-time energy cost of moving one node's
	// load (state transfer, warm-up). A consolidation must pay for
	// itself: it happens only when the evicted idle floor recovers this
	// cost within AmortizeSec.
	MigrationCostJ float64
	// AmortizeSec is the horizon over which a migration's cost must be
	// recovered by the idle-floor saving. Zero defaults to 300 s.
	AmortizeSec float64
	// MinNodes is the minimum number of powered-on healthy survivors;
	// values below 1 behave as 1 (the last-node invariant: the scheduler
	// never powers the whole fleet down).
	MinNodes int
}

// amortize returns the effective amortization horizon.
func (cfg Config) amortize() float64 {
	if cfg.AmortizeSec <= 0 {
		return 300
	}
	return cfg.AmortizeSec
}

// planState tracks the working fleet during planning.
type planState struct {
	nodes []NodeInfo // working copy; Watts/threads mutate as actions apply
	off   []bool     // powered down by an earlier action this decision
	alive int        // healthy powered-on survivors
	total float64    // their summed estimated draw
}

// Plan computes one interval's decision for the given fleet snapshot.
// The input lists powered-on nodes in fleet insertion order (powered-off
// nodes have no draw and nothing to schedule; callers simply omit them).
// Quarantined nodes must be passed with Healthy=false so the planner
// knows they exist but cannot use them.
//
// Plan is a pure function: identical input produces an identical
// decision, and the input slice is never mutated.
func Plan(fleet []NodeInfo, cfg Config) Decision {
	minNodes := cfg.MinNodes
	if minNodes < 1 {
		minNodes = 1
	}
	st := planState{
		nodes: append([]NodeInfo(nil), fleet...),
		off:   make([]bool, len(fleet)),
	}
	for i := range st.nodes {
		if st.nodes[i].Healthy {
			st.alive++
			st.total += st.nodes[i].Watts
		}
	}
	before := st.total
	var d Decision
	hasBudget := cfg.BudgetWatts > 0

	// Phase 1 — budget enforcement, largest consumer first (the
	// PlanConsolidation heritage: fewest evictions shed the most Watts).
	// Each eviction first tries to migrate (sheds only the idle floor but
	// loses no work), and shed-unplaced is the last resort.
	if hasBudget {
		for st.total > cfg.BudgetWatts && st.alive > minNodes {
			src := st.pickEvictee(largestFirst)
			if src < 0 {
				break
			}
			host := st.pickHost(src)
			delta := st.nodes[src].dynamic()
			if host >= 0 && st.total-st.nodes[src].IdleWatts <= cfg.BudgetWatts {
				// Migrating saves the idle floor; prefer it whenever that
				// alone already satisfies the budget.
				st.apply(src, host)
				d.Actions = append(d.Actions, Action{
					Node: st.nodes[src].Name, Host: st.nodes[host].Name,
					DeltaWatts: delta, Threads: st.nodes[src].UsedThreads,
					Reason: "budget",
				})
				d.MigrationJ += cfg.MigrationCostJ
				continue
			}
			// No host fits (or migration alone cannot reach the budget):
			// shed the whole node's draw.
			shed := st.nodes[src].Watts
			st.apply(src, -1)
			d.Actions = append(d.Actions, Action{
				Node: st.nodes[src].Name, DeltaWatts: shed, Reason: "budget",
			})
		}
	}

	// Phase 2 — energy-proportional consolidation: pack the smallest
	// dynamic loads onto the busiest hosts that can hold them, powering
	// the emptied nodes down, as long as each move pays for itself and
	// the budget (if any) stays met.
	for st.alive > minNodes {
		src := st.pickEvictee(smallestDynamicFirst)
		if src < 0 {
			break
		}
		if st.nodes[src].IdleWatts*cfg.amortize() <= cfg.MigrationCostJ {
			break // cheapest remaining saving cannot amortize a migration
		}
		host := st.pickHost(src)
		if host < 0 {
			break // nothing can take even the smallest load without overload
		}
		delta := st.nodes[src].dynamic()
		st.apply(src, host)
		d.Actions = append(d.Actions, Action{
			Node: st.nodes[src].Name, Host: st.nodes[host].Name,
			DeltaWatts: delta, Threads: st.nodes[src].UsedThreads,
			Reason: "consolidate",
		})
		d.MigrationJ += cfg.MigrationCostJ
	}

	d.Projected = st.total
	d.Fits = !hasBudget || st.total <= cfg.BudgetWatts
	d.SavedWatts = before - st.total
	return d
}

// evictionOrder ranks eviction candidates; true means a beats b.
type evictionOrder func(a, b *NodeInfo) bool

// largestFirst sheds the most Watts per eviction (budget mode).
func largestFirst(a, b *NodeInfo) bool { return a.Watts > b.Watts }

// smallestDynamicFirst moves the cheapest load first (consolidation
// mode): the smallest dynamic load is the easiest to place and frees a
// whole idle floor.
func smallestDynamicFirst(a, b *NodeInfo) bool { return a.dynamic() < b.dynamic() }

// pickEvictee returns the best eviction candidate under the order, or
// -1. Strict comparisons scan in insertion order, so ties break toward
// the earlier node.
func (st *planState) pickEvictee(better evictionOrder) int {
	best := -1
	for i := range st.nodes {
		n := &st.nodes[i]
		if !n.Healthy || st.off[i] {
			continue
		}
		if best < 0 || better(n, &st.nodes[best]) {
			best = i
		}
	}
	return best
}

// pickHost returns the busiest surviving node that can absorb src's
// dynamic load without overload — enough free threads and enough Watts
// headroom below capacity — or -1. Busiest-first packing concentrates
// load on few hosts so later evictions keep finding empty nodes; ties
// break toward the earlier node.
func (st *planState) pickHost(src int) int {
	need := st.nodes[src].dynamic()
	threads := st.nodes[src].UsedThreads
	best := -1
	for i := range st.nodes {
		if i == src {
			continue
		}
		h := &st.nodes[i]
		if !h.Healthy || st.off[i] {
			continue
		}
		if h.FreeThreads < threads {
			continue
		}
		if h.Watts+need > h.CapacityWatts {
			continue
		}
		if best < 0 || h.Watts > st.nodes[best].Watts {
			best = i
		}
	}
	return best
}

// apply powers src down, moving its dynamic load to host (-1 = shed).
func (st *planState) apply(src, host int) {
	delta := st.nodes[src].dynamic()
	st.off[src] = true
	st.alive--
	if host >= 0 {
		st.total -= st.nodes[src].IdleWatts
		st.nodes[host].Watts += delta
		st.nodes[host].FreeThreads -= st.nodes[src].UsedThreads
		// The host now owns the migrated threads: if it is itself evicted
		// later, its handed-off load includes them.
		st.nodes[host].UsedThreads += st.nodes[src].UsedThreads
	} else {
		st.total -= st.nodes[src].Watts
	}
	st.nodes[src].Watts = 0
}
