package sched

import (
	"math"
	"reflect"
	"testing"
)

func onNode(name string, watts, cap float64, free int) NodeInfo {
	return NodeInfo{
		Name: name, Watts: watts, IdleWatts: watts / 2,
		CapacityWatts: cap, FreeThreads: free, Healthy: true,
	}
}

func offNode(name string, idle, cap float64, free int) OffNode {
	return OffNode{Name: name, IdleWatts: idle, CapacityWatts: cap, FreeThreads: free}
}

func TestPlanExpansionWakesUntilTarget(t *testing.T) {
	on := []NodeInfo{
		onNode("a", 90, 100, 0),
		onNode("b", 85, 100, 0),
	}
	off := []OffNode{
		offNode("c", 20, 100, 2),
		offNode("d", 20, 100, 2),
		offNode("e", 20, 100, 2),
	}
	e := PlanExpansion(on, off, ExpandConfig{TargetUtil: 0.75})
	// util starts at 175/200 = 0.875; waking c gives 195/300 = 0.65.
	if !reflect.DeepEqual(e.PowerOn, []string{"c"}) {
		t.Fatalf("PowerOn = %v", e.PowerOn)
	}
	if math.Abs(e.UtilBefore-0.875) > 1e-12 || math.Abs(e.UtilAfter-0.65) > 1e-12 {
		t.Fatalf("util %v -> %v", e.UtilBefore, e.UtilAfter)
	}
	if e.AddedWatts != 20 || e.FreeAfter != 2 {
		t.Fatalf("added %v free %d", e.AddedWatts, e.FreeAfter)
	}
}

func TestPlanExpansionNoNeed(t *testing.T) {
	on := []NodeInfo{onNode("a", 40, 100, 4)}
	off := []OffNode{offNode("b", 20, 100, 2)}
	e := PlanExpansion(on, off, ExpandConfig{TargetUtil: 0.75})
	if len(e.PowerOn) != 0 {
		t.Fatalf("unnecessary expansion: %v", e.PowerOn)
	}
	if got := e.Summary(); got != "no expansion (util 0.40, 4 free threads)" {
		t.Fatalf("summary %q", got)
	}
}

func TestPlanExpansionFreeThreadFloor(t *testing.T) {
	on := []NodeInfo{onNode("a", 10, 100, 1)}
	off := []OffNode{
		offNode("b", 20, 100, 2),
		offNode("c", 20, 100, 2),
	}
	e := PlanExpansion(on, off, ExpandConfig{TargetUtil: 0.95, MinFreeThreads: 4})
	if !reflect.DeepEqual(e.PowerOn, []string{"b", "c"}) {
		t.Fatalf("PowerOn = %v", e.PowerOn)
	}
	if e.FreeBefore != 1 || e.FreeAfter != 5 {
		t.Fatalf("free %d -> %d", e.FreeBefore, e.FreeAfter)
	}
}

func TestPlanExpansionExhaustsPoolAndCaps(t *testing.T) {
	on := []NodeInfo{onNode("a", 99, 100, 0)}
	off := []OffNode{
		offNode("b", 50, 60, 2),
		offNode("c", 50, 60, 2),
		offNode("d", 50, 60, 2),
	}
	// Even waking everything cannot reach 0.5; the plan wakes the whole
	// pool in order.
	e := PlanExpansion(on, off, ExpandConfig{TargetUtil: 0.5})
	if !reflect.DeepEqual(e.PowerOn, []string{"b", "c", "d"}) {
		t.Fatalf("PowerOn = %v", e.PowerOn)
	}
	// MaxPowerOn bounds the inrush.
	e = PlanExpansion(on, off, ExpandConfig{TargetUtil: 0.5, MaxPowerOn: 1})
	if !reflect.DeepEqual(e.PowerOn, []string{"b"}) {
		t.Fatalf("capped PowerOn = %v", e.PowerOn)
	}
}

func TestPlanExpansionEdgeCases(t *testing.T) {
	// No powered-on capacity at all but positive draw: infinite util,
	// wake something.
	e := PlanExpansion(nil, []OffNode{offNode("b", 20, 100, 2)}, ExpandConfig{})
	if len(e.PowerOn) != 0 {
		// zero watts and zero capacity → util 0 → nothing to do
		t.Fatalf("empty fleet woke %v", e.PowerOn)
	}
	// Unhealthy nodes are invisible.
	on := []NodeInfo{
		{Name: "sick", Watts: 1000, CapacityWatts: 100, Healthy: false},
		onNode("a", 10, 100, 2),
	}
	e = PlanExpansion(on, nil, ExpandConfig{})
	if e.UtilBefore != 0.1 {
		t.Fatalf("unhealthy node counted: util %v", e.UtilBefore)
	}
	// A useless off-node (no capacity, no threads) is skipped, not
	// woken forever.
	off := []OffNode{
		{Name: "husk"},
		offNode("b", 20, 100, 2),
	}
	e = PlanExpansion([]NodeInfo{onNode("a", 95, 100, 0)}, off, ExpandConfig{TargetUtil: 0.75})
	if !reflect.DeepEqual(e.PowerOn, []string{"b"}) {
		t.Fatalf("PowerOn = %v", e.PowerOn)
	}
	// Deterministic: same inputs, same decision.
	e2 := PlanExpansion([]NodeInfo{onNode("a", 95, 100, 0)}, off, ExpandConfig{TargetUtil: 0.75})
	if !reflect.DeepEqual(e, e2) {
		t.Fatal("expansion not deterministic")
	}
}
