package sched

import (
	"fmt"
	"math"
	"strings"
)

// OffNode is the scheduler's inventory view of a powered-down healthy
// node — the pool PlanExpansion draws from on a load ramp. IdleWatts is
// what powering it on immediately costs (its floor; migrated-in load
// comes on top), CapacityWatts and FreeThreads are what it adds to the
// fleet's headroom.
type OffNode struct {
	Name          string
	IdleWatts     float64
	CapacityWatts float64
	FreeThreads   int
}

// ExpandConfig bounds the expansion decision.
type ExpandConfig struct {
	// TargetUtil is the highest acceptable fleet utilization
	// (draw / capacity over healthy powered-on nodes); nodes power on
	// until projected utilization drops to it. Zero means 0.75.
	TargetUtil float64
	// MinFreeThreads additionally powers nodes on until the fleet has
	// at least this many free hardware threads for incoming load.
	MinFreeThreads int
	// MaxPowerOn caps how many nodes one decision may wake (0 = no
	// cap), bounding inrush on a steep ramp.
	MaxPowerOn int
}

func (c ExpandConfig) withDefaults() ExpandConfig {
	if c.TargetUtil == 0 {
		c.TargetUtil = 0.75
	}
	return c
}

// Expansion is the power-up decision for one interval.
type Expansion struct {
	// PowerOn lists nodes to wake, in decision order.
	PowerOn []string
	// UtilBefore/UtilAfter are fleet utilization before and after
	// (projected: woken nodes contribute their idle draw and their
	// capacity).
	UtilBefore float64
	UtilAfter  float64
	// FreeBefore/FreeAfter count the fleet's free threads.
	FreeBefore int
	FreeAfter  int
	// AddedWatts is the projected draw increase (woken idle floors).
	AddedWatts float64
}

// Summary renders the expansion as one stable line.
func (e Expansion) Summary() string {
	if len(e.PowerOn) == 0 {
		return fmt.Sprintf("no expansion (util %.2f, %d free threads)", e.UtilBefore, e.FreeBefore)
	}
	return fmt.Sprintf("power-on %s (util %.2f -> %.2f, free threads %d -> %d, +%.1f W idle)",
		strings.Join(e.PowerOn, ","), e.UtilBefore, e.UtilAfter, e.FreeBefore, e.FreeAfter, e.AddedWatts)
}

// PlanExpansion is Plan's inverse for the morning ramp: consolidation
// powered nodes down overnight, and as the diurnal load grows back the
// surviving nodes' utilization climbs; this decides which powered-off
// nodes to wake so the fleet regains headroom *before* survivors
// saturate. Off-nodes wake in the given order (deterministic,
// insertion-order ties like Plan) until projected utilization is at or
// below TargetUtil and the free-thread floor is met, or the pool or
// MaxPowerOn runs out. Like Plan it is a pure function of its inputs:
// estimator-derived draws in, names out, no simulation touched.
func PlanExpansion(on []NodeInfo, off []OffNode, cfg ExpandConfig) Expansion {
	cfg = cfg.withDefaults()
	var watts, capacity float64
	free := 0
	for i := range on {
		n := &on[i]
		if !n.Healthy {
			continue
		}
		watts += n.Watts
		capacity += n.CapacityWatts
		free += n.FreeThreads
	}
	util := func(w, c float64) float64 {
		if c <= 0 {
			if w > 0 {
				return math.Inf(1)
			}
			return 0
		}
		return w / c
	}
	e := Expansion{
		UtilBefore: util(watts, capacity),
		FreeBefore: free,
	}
	projW, projC := watts, capacity
	for i := range off {
		needUtil := util(projW, projC) > cfg.TargetUtil
		needFree := free < cfg.MinFreeThreads
		if !needUtil && !needFree {
			break
		}
		if cfg.MaxPowerOn > 0 && len(e.PowerOn) >= cfg.MaxPowerOn {
			break
		}
		n := &off[i]
		if n.CapacityWatts <= 0 && n.FreeThreads <= 0 {
			continue
		}
		e.PowerOn = append(e.PowerOn, n.Name)
		projW += n.IdleWatts
		projC += n.CapacityWatts
		free += n.FreeThreads
		e.AddedWatts += n.IdleWatts
	}
	e.UtilAfter = util(projW, projC)
	e.FreeAfter = free
	return e
}
