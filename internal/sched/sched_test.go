package sched

import (
	"math"
	"reflect"
	"testing"
)

// node builds a healthy NodeInfo with the fleet-typical shape: 8-thread
// box, 230 W idle floor, 320 W capacity.
func node(name string, watts float64, usedThreads int) NodeInfo {
	return NodeInfo{
		Name: name, Watts: watts, IdleWatts: 230, CapacityWatts: 320,
		UsedThreads: usedThreads, FreeThreads: 8 - usedThreads, Healthy: true,
	}
}

// cfg is the test default: budget off, migrations amortize easily.
func cfg() Config {
	return Config{MigrationCostJ: 1000, AmortizeSec: 300}
}

func TestPlanEmptyFleet(t *testing.T) {
	d := Plan(nil, Config{BudgetWatts: 100})
	if len(d.Actions) != 0 || !d.Fits || d.Projected != 0 || d.SavedWatts != 0 {
		t.Errorf("empty fleet decision = %+v", d)
	}
	d = Plan([]NodeInfo{}, cfg())
	if len(d.Actions) != 0 || !d.Fits {
		t.Errorf("empty fleet decision = %+v", d)
	}
}

func TestPlanAllNodesQuarantined(t *testing.T) {
	fleet := []NodeInfo{node("a", 260, 8), node("b", 250, 8)}
	for i := range fleet {
		fleet[i].Healthy = false
	}
	d := Plan(fleet, Config{BudgetWatts: 100, MigrationCostJ: 1000})
	// Unknown draw: nothing to decide, nothing to count. An all-
	// quarantined fleet trivially "fits" because the scheduler cannot
	// see any draw — the cluster layer is what reports ErrNodeFailed.
	if len(d.Actions) != 0 {
		t.Errorf("actions on quarantined fleet: %v", d.Actions)
	}
	if d.Projected != 0 || !d.Fits {
		t.Errorf("decision = %+v", d)
	}
}

// TestPlanQuarantinedNeverHostsNorMoves pins the quarantine rule: the
// unhealthy node is not evicted, receives no load, and its draw is not
// in the projection.
func TestPlanQuarantinedNeverHostsNorMoves(t *testing.T) {
	fleet := []NodeInfo{
		node("busy", 300, 6),
		{Name: "dead", Watts: 500, IdleWatts: 230, CapacityWatts: 320, FreeThreads: 8, Healthy: false},
		node("light", 240, 1),
	}
	d := Plan(fleet, cfg())
	if d.Projected != 300+240-230+0 { // light's dynamic lands on busy
		t.Errorf("projected = %v", d.Projected)
	}
	for _, a := range d.Actions {
		if a.Node == "dead" || a.Host == "dead" {
			t.Errorf("quarantined node used: %v", a)
		}
	}
}

// TestPlanBudgetBelowSingleNode: a budget below any single node's draw
// sheds down to MinNodes and honestly reports Fits=false — it never
// powers off the last node.
func TestPlanBudgetBelowSingleNode(t *testing.T) {
	fleet := []NodeInfo{node("a", 260, 8), node("b", 250, 8), node("c", 240, 8)}
	d := Plan(fleet, Config{BudgetWatts: 100, MigrationCostJ: 1000})
	if d.Fits {
		t.Error("impossible budget reported as fitting")
	}
	if len(d.Actions) != 2 {
		t.Fatalf("actions = %v", d.Actions)
	}
	// Largest first: a (260) then b (250); c survives as the last node.
	if d.Actions[0].Node != "a" || d.Actions[1].Node != "b" {
		t.Errorf("eviction order = %v", d.Actions)
	}
	for _, a := range d.Actions {
		if a.Node == "c" {
			t.Error("last node powered off")
		}
	}
	if d.Projected != 240 {
		t.Errorf("projected = %v", d.Projected)
	}
}

// TestPlanMinNodesInvariant: MinNodes>1 is honored by both phases.
func TestPlanMinNodesInvariant(t *testing.T) {
	fleet := []NodeInfo{node("a", 240, 1), node("b", 240, 1), node("c", 240, 1), node("d", 240, 1)}
	c := cfg()
	c.MinNodes = 3
	d := Plan(fleet, c)
	if got := len(d.Actions); got > 1 {
		t.Errorf("evicted %d nodes with MinNodes=3: %v", got, d.Actions)
	}
}

// TestPlanNeverOverloadSurvivors: a migration must fit the host's Watts
// headroom and free threads; when nothing fits and there is no budget
// pressure, the scheduler does nothing rather than overload.
func TestPlanNeverOverloadSurvivors(t *testing.T) {
	// Both nodes are near capacity: moving either's 80 W dynamic load
	// would push the other past 320 W.
	fleet := []NodeInfo{node("a", 310, 4), node("b", 310, 4)}
	d := Plan(fleet, cfg())
	if len(d.Actions) != 0 {
		t.Errorf("overloading actions: %v", d.Actions)
	}

	// Thread capacity binds too: light's load needs 6 threads but the
	// busier host has only 2 free.
	fleet = []NodeInfo{
		{Name: "host", Watts: 260, IdleWatts: 230, CapacityWatts: 320, UsedThreads: 6, FreeThreads: 2, Healthy: true},
		{Name: "light", Watts: 250, IdleWatts: 230, CapacityWatts: 320, UsedThreads: 6, FreeThreads: 2, Healthy: true},
	}
	d = Plan(fleet, cfg())
	if len(d.Actions) != 0 {
		t.Errorf("thread-overloading actions: %v", d.Actions)
	}
}

// TestPlanConsolidationPacksOntoBusiest: the busiest host that fits
// receives the load (one-by-one busiest-first placement), and the
// emptied node's idle floor is the saving.
func TestPlanConsolidationPacksOntoBusiest(t *testing.T) {
	fleet := []NodeInfo{
		node("big", 290, 4),   // busiest: should host
		node("mid", 260, 2),   // second host candidate
		node("tiny", 235, 1),  // 5 W dynamic: evicted first
		node("small", 240, 1), // 10 W dynamic: evicted second
	}
	d := Plan(fleet, cfg())
	if len(d.Actions) < 2 {
		t.Fatalf("actions = %v", d.Actions)
	}
	if d.Actions[0].Node != "tiny" || d.Actions[0].Host != "big" {
		t.Errorf("first action = %v, want tiny -> big", d.Actions[0])
	}
	if d.Actions[1].Node != "small" || d.Actions[1].Host != "big" {
		t.Errorf("second action = %v, want small -> big", d.Actions[1])
	}
	// Savings: one idle floor per eviction.
	wantSaved := 230.0 * float64(len(d.Actions))
	if math.Abs(d.SavedWatts-wantSaved) > 1e-9 {
		t.Errorf("saved = %v, want %v", d.SavedWatts, wantSaved)
	}
	if math.Abs(d.MigrationJ-1000*float64(len(d.Actions))) > 1e-9 {
		t.Errorf("migrationJ = %v", d.MigrationJ)
	}
}

// TestPlanMigrationCostGate: when the idle-floor saving cannot amortize
// the migration cost over the horizon, nothing moves.
func TestPlanMigrationCostGate(t *testing.T) {
	fleet := []NodeInfo{node("a", 290, 4), node("b", 235, 1)}
	c := cfg()
	c.MigrationCostJ = 230*300 + 1 // one Joule past what 230 W × 300 s recovers
	if d := Plan(fleet, c); len(d.Actions) != 0 {
		t.Errorf("unamortizable migration planned: %v", d.Actions)
	}
	c.MigrationCostJ = 230*300 - 1
	if d := Plan(fleet, c); len(d.Actions) != 1 {
		t.Errorf("amortizable migration not planned: %+v", Plan(fleet, c))
	}
}

// TestPlanTieBreakDeterminism: identical nodes tie on every comparison;
// the decision must pick earlier insertion order, every time, and two
// runs over the same input must be action-for-action identical.
func TestPlanTieBreakDeterminism(t *testing.T) {
	fleet := []NodeInfo{
		node("host-a", 280, 3),
		node("host-b", 280, 3), // ties host-a on watts: host-a must win
		node("idle-a", 230, 1),
		node("idle-b", 230, 1), // ties idle-a on dynamic: idle-a moves first
	}
	d1 := Plan(fleet, cfg())
	d2 := Plan(fleet, cfg())
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("same input, different decisions:\n%+v\n%+v", d1, d2)
	}
	if len(d1.Actions) < 2 {
		t.Fatalf("actions = %v", d1.Actions)
	}
	if d1.Actions[0].Node != "idle-a" || d1.Actions[0].Host != "host-a" {
		t.Errorf("first action = %v, want idle-a -> host-a", d1.Actions[0])
	}
	if d1.Actions[1].Node != "idle-b" || d1.Actions[1].Host != "host-a" {
		t.Errorf("second action = %v, want idle-b -> host-a (still busiest)", d1.Actions[1])
	}
}

// TestPlanInputNotMutated: Plan is a pure function of its input.
func TestPlanInputNotMutated(t *testing.T) {
	fleet := []NodeInfo{node("a", 290, 4), node("b", 235, 1)}
	want := append([]NodeInfo(nil), fleet...)
	Plan(fleet, cfg())
	if !reflect.DeepEqual(fleet, want) {
		t.Errorf("input mutated: %+v", fleet)
	}
}

// TestPlanBudgetPrefersFinishingMigration: when saving one idle floor
// reaches the budget, the largest consumer is migrated (work preserved)
// rather than shed.
func TestPlanBudgetPrefersFinishingMigration(t *testing.T) {
	// Total 775; budget 560. Evicting "big" (285, 55 W dynamic) onto
	// "mid" fits (250+55=305 ≤ 320) and saves its 230 W floor: 545 ≤ 560.
	fleet := []NodeInfo{node("big", 285, 4), node("mid", 250, 2), node("low", 240, 1)}
	d := Plan(fleet, Config{BudgetWatts: 560, MigrationCostJ: 1e12, AmortizeSec: 1})
	if len(d.Actions) == 0 || d.Actions[0].Node != "big" || d.Actions[0].Host != "mid" {
		t.Fatalf("actions = %v", d.Actions)
	}
	if d.Actions[0].Reason != "budget" {
		t.Errorf("reason = %q", d.Actions[0].Reason)
	}
	if !d.Fits || d.Projected > 560 {
		t.Errorf("decision = %+v", d)
	}
	// The enormous migration cost gates only consolidation, not a
	// budget-mandated move: phase 1 must still act.
	if d.MigrationJ != 1e12 {
		t.Errorf("migrationJ = %v", d.MigrationJ)
	}
}

// TestPlanShedWhenNothingFits: under budget pressure with no feasible
// host, the node is shed unplaced — survivors are never overloaded to
// make a budget.
func TestPlanShedWhenNothingFits(t *testing.T) {
	fleet := []NodeInfo{node("a", 315, 8), node("b", 315, 8), node("c", 315, 8)}
	d := Plan(fleet, Config{BudgetWatts: 640})
	if len(d.Actions) != 1 {
		t.Fatalf("actions = %v", d.Actions)
	}
	a := d.Actions[0]
	if a.Host != "" || a.Node != "a" || a.DeltaWatts != 315 {
		t.Errorf("action = %+v, want shed of a's full 315 W", a)
	}
	if !d.Fits || d.Projected != 630 {
		t.Errorf("decision = %+v", d)
	}
}
