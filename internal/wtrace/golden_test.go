package wtrace

import (
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/machine"
	"trickledown/internal/workload"
)

// goldenDBT2TraceFP pins the WTR1 fingerprint of recording the
// fixed-seed dbt-2 run below. Any change to the generators, the
// machine's slice stepping, the RNG split order, or the codec that
// moves recorded rates shows up here first — the same bar the PR 4
// byte-identical dataset fingerprints set.
const goldenDBT2TraceFP = "ab2d492b2e395ca8"

// goldenConfig is the fixed recording configuration: the paper's
// server at a pinned seed, 20 recorded seconds.
func goldenConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Seed = 7
	return cfg
}

const goldenSeconds = 20

// TestGoldenRecordReplayDBT2 records a fixed-seed dbt-2 run, checks the
// trace fingerprint against the pinned golden, then replays the trace
// through a fresh machine and requires the replayed aligned dataset to
// be byte-identical (align.Fingerprint) to the live run's.
func TestGoldenRecordReplayDBT2(t *testing.T) {
	spec, err := workload.ByName("dbt-2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig()
	rec, err := NewRecorder(spec.Name, 1/cfg.Slice.Seconds(), spec.Instances)
	if err != nil {
		t.Fatal(err)
	}
	rspec, err := RecordSpec(spec, rec)
	if err != nil {
		t.Fatal(err)
	}
	live, err := machine.New(cfg, rspec)
	if err != nil {
		t.Fatal(err)
	}
	live.Run(goldenSeconds)
	liveDS, err := live.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	liveFP := align.Fingerprint(liveDS)

	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	traceFP, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if traceFP != goldenDBT2TraceFP {
		t.Errorf("dbt-2 trace fingerprint %s, golden %s", traceFP, goldenDBT2TraceFP)
	}

	// Round-trip the trace through the codec before replaying: the
	// replayed machine must see exactly what a reader of the file sees.
	enc, err := tr.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	rpSpec, err := dec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	replay, err := machine.New(cfg, rpSpec)
	if err != nil {
		t.Fatal(err)
	}
	replay.Run(goldenSeconds)
	rpDS, err := replay.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if rpFP := align.Fingerprint(rpDS); rpFP != liveFP {
		t.Errorf("replay dataset %s != live dataset %s", rpFP, liveFP)
	}
	if tr.Header.ChipsetDomainBias != spec.ChipsetDomainBias {
		t.Errorf("trace bias %v != spec bias %v", tr.Header.ChipsetDomainBias, spec.ChipsetDomainBias)
	}
}
