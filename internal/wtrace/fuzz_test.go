package wtrace

import (
	"bytes"
	"testing"

	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

// fuzzSeedCorpus returns representative encodings to seed both fuzzers:
// a valid multi-run trace, a minimal single-run trace, and a trace with
// flags and an empty stream.
func fuzzSeedCorpus(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	add := func(tr *Trace) {
		enc, err := tr.EncodeBytes()
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, enc)
	}
	add(testTrace())
	add(&Trace{
		Header: Header{
			Workload: "min", RatePerSec: 1, Threads: 1,
			Starts: []float64{0}, Metrics: Metrics(), Samples: 1,
		},
		Streams: [][]Run{{{T: 0, N: 1, D: workload.Demand{Active: 1}}}},
	})
	add(&Trace{
		Header: Header{
			Workload: "flags", RatePerSec: 1000, Threads: 2,
			Starts: []float64{0, 0}, Metrics: Metrics(), Samples: 4,
			ChipsetDomainBias: -0.4,
		},
		Streams: [][]Run{
			{{T: 0, N: 4, D: workload.Demand{Active: 0.5, DiskWriteBytes: 1 << 20, RandomIO: true, Sync: true}}},
			nil,
		},
	})
	return seeds
}

// FuzzDecodeWTR1 feeds arbitrary bytes to the decoder: it must never
// panic, and anything it accepts must re-encode to the identical bytes
// and satisfy Validate.
func FuzzDecodeWTR1(f *testing.F) {
	for _, s := range fuzzSeedCorpus(f) {
		f.Add(s)
	}
	f.Add([]byte("WTR1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeBytes(data)
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("decoded trace fails Validate: %v", verr)
		}
		re, err := tr.EncodeBytes()
		if err != nil {
			t.Fatalf("accepted trace fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("encode(decode(x)) != x: %d vs %d bytes", len(re), len(data))
		}
	})
}

// FuzzReplayRoundTrip drives the recorder with fuzzer-chosen demand
// programs, round-trips the trace through the codec, and requires the
// replay generator to reproduce the recorded per-interval demands and
// the re-encode to be byte-identical.
func FuzzReplayRoundTrip(f *testing.F) {
	f.Add(uint16(50), int64(3), false)
	f.Add(uint16(1), int64(99), true)
	f.Add(uint16(1000), int64(17), false)
	f.Fuzz(func(t *testing.T, intervals uint16, seed int64, flip bool) {
		if intervals == 0 {
			intervals = 1
		}
		rec, err := NewRecorder("fuzz", 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(uint64(seed))
		gen := &fuzzGen{rng: rng, flip: flip}
		g, err := rec.Wrap(0, 0, gen)
		if err != nil {
			t.Fatal(err)
		}
		var env workload.Env
		var live []workload.Demand
		for i := 0; i < int(intervals); i++ {
			live = append(live, g.Demand(float64(i)*0.001, env, nil))
		}
		tr, err := rec.Trace()
		if err != nil {
			t.Fatal(err)
		}
		enc, err := tr.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeBytes(enc)
		if err != nil {
			t.Fatalf("decode of fresh encoding failed: %v", err)
		}
		re, err := dec.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatal("round-trip not byte-identical")
		}
		rp, err := dec.Generator(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range live {
			if d := rp.Demand(float64(i)*0.001, env, nil); d != live[i] {
				t.Fatalf("interval %d: replay %+v != recorded %+v", i, d, live[i])
			}
		}
	})
}

// fuzzGen emits seeded pseudo-random demands with occasional repeats
// (exercising both RLE merge and run breaks) and flag toggles.
type fuzzGen struct {
	rng  *sim.RNG
	flip bool
	last workload.Demand
	n    int
}

func (g *fuzzGen) Name() string { return "fuzz" }

func (g *fuzzGen) Demand(t float64, env workload.Env, rng *sim.RNG) workload.Demand {
	g.n++
	if g.n > 1 && g.rng.Float64() < 0.5 {
		return g.last // repeat: must merge into the current run
	}
	d := workload.Demand{
		Active:        g.rng.Float64(),
		UopsPerCycle:  2 * g.rng.Float64(),
		L3MissPerKuop: 5 * g.rng.Float64(),
		DiskReadBytes: float64(g.rng.Intn(1 << 20)),
		RandomIO:      g.flip && g.n%3 == 0,
		Sync:          g.flip && g.n%5 == 0,
	}
	g.last = d
	return d
}
