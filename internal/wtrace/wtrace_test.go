package wtrace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

// testTrace builds a small valid two-thread trace by hand.
func testTrace() *Trace {
	d1 := workload.Demand{Active: 0.8, UopsPerCycle: 1.2, L3MissPerKuop: 0.5, MemLocality: 0.9}
	d2 := workload.Demand{Active: 0.4, UopsPerCycle: 0.6, DiskReadBytes: 4096, RandomIO: true, Sync: true}
	tr := &Trace{
		Header: Header{
			Workload:   "unit",
			RatePerSec: 1000,
			Threads:    2,
			Starts:     []float64{0, 5},
			Metrics:    Metrics(),
			Samples:    7,
		},
		Streams: [][]Run{
			{{T: 0, N: 3, D: d1}, {T: 0.003, N: 2, D: d2}},
			{{T: 0, N: 2, D: d1}},
		},
	}
	return tr
}

func TestCodecRoundTrip(t *testing.T) {
	tr := testTrace()
	enc, err := tr.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, dec) {
		t.Fatalf("decode mismatch:\n got %+v\nwant %+v", dec, tr)
	}
	re, err := dec.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("encode(decode(x)) != x")
	}
	fp1, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := dec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 || len(fp1) != 16 {
		t.Fatalf("fingerprint mismatch %q vs %q", fp1, fp2)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc, err := testTrace().EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeBytes(enc[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	if _, err := DecodeBytes(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc, err := testTrace().EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 5, 9, 20, len(enc) / 2, len(enc) - 4} {
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 0x40
		if _, err := DecodeBytes(bad); err == nil {
			t.Fatalf("flipped byte at %d accepted", pos)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
		want   string
	}{
		{"empty workload", func(tr *Trace) { tr.Header.Workload = "" }, "workload name"},
		{"zero rate", func(tr *Trace) { tr.Header.RatePerSec = 0 }, "sample rate"},
		{"nan rate", func(tr *Trace) { tr.Header.RatePerSec = math.NaN() }, "sample rate"},
		{"inf rate", func(tr *Trace) { tr.Header.RatePerSec = math.Inf(1) }, "sample rate"},
		{"starts mismatch", func(tr *Trace) { tr.Header.Starts = tr.Header.Starts[:1] }, "starts"},
		{"negative start", func(tr *Trace) { tr.Header.Starts[1] = -1 }, "invalid start"},
		{"nan bias", func(tr *Trace) { tr.Header.ChipsetDomainBias = math.NaN() }, "chipset bias"},
		{"bad metric", func(tr *Trace) { tr.Header.Metrics[3] = "mystery" }, "metric 3"},
		{"missing metric", func(tr *Trace) { tr.Header.Metrics = tr.Header.Metrics[:14] }, "metrics"},
		{"zero-length run", func(tr *Trace) { tr.Streams[0][1].N = 0 }, "zero length"},
		{"nan time", func(tr *Trace) { tr.Streams[0][1].T = math.NaN() }, "invalid time"},
		{"non-monotonic", func(tr *Trace) { tr.Streams[0][1].T = 0 }, "not monotonic"},
		{"overlapping runs", func(tr *Trace) { tr.Streams[0][1].T = 0.001 }, "not monotonic"},
		{"nan demand", func(tr *Trace) { tr.Streams[1][0].D.Active = math.NaN() }, "active"},
		{"inf demand", func(tr *Trace) { tr.Streams[1][0].D.DiskReadBytes = math.Inf(1) }, "disk_read_bytes"},
		{"sample count", func(tr *Trace) { tr.Header.Samples = 99 }, "samples"},
	}
	for _, tc := range cases {
		tr := testTrace()
		tc.mutate(tr)
		err := tr.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeRejectsUnknownVersionAndFlags(t *testing.T) {
	enc, err := testTrace().EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), enc...)
	bad[4] = 9 // version little-endian low byte
	if _, err := DecodeBytes(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version: %v", err)
	}
	// The final run's flags byte sits runBytes into the last stream,
	// trailerLen+1 from the end.
	bad = append([]byte(nil), enc...)
	bad[len(bad)-trailerLen-1] |= 0x80
	if _, err := DecodeBytes(bad); err == nil {
		t.Fatal("unknown flag bits accepted")
	}
}

func TestRecorderRLEAndReplayCursor(t *testing.T) {
	rec, err := NewRecorder("rle", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	steady := workload.Demand{Active: 0.5, UopsPerCycle: 1}
	burst := workload.Demand{Active: 1, UopsPerCycle: 2}
	g, err := rec.Wrap(0, 0, constGen{d: steady})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Wrap(0, 0, constGen{}); err == nil {
		t.Fatal("double wrap accepted")
	}
	rng := sim.NewRNG(1)
	var env workload.Env
	for i := 0; i < 2000; i++ {
		tt := float64(i) * 0.001
		if i >= 500 && i < 600 {
			g.(*recordGen).inner = constGen{d: burst}
		} else {
			g.(*recordGen).inner = constGen{d: steady}
		}
		g.Demand(tt, env, rng)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Streams[0]); got != 3 {
		t.Fatalf("RLE produced %d runs, want 3", got)
	}
	if tr.Header.Samples != 2000 {
		t.Fatalf("samples = %d", tr.Header.Samples)
	}

	rp, err := tr.Generator(0)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential, out-of-order rewind, and past-the-end clamping.
	if d := rp.Demand(0.550, env, rng); d != burst {
		t.Fatalf("t=0.550: %+v", d)
	}
	if d := rp.Demand(0.100, env, rng); d != steady {
		t.Fatalf("rewind t=0.100: %+v", d)
	}
	if d := rp.Demand(5.0, env, rng); d != steady {
		t.Fatalf("past end: %+v", d)
	}
	loop, err := tr.LoopGenerator(0)
	if err != nil {
		t.Fatal(err)
	}
	if d := loop.Demand(2.550, env, rng); d != burst {
		t.Fatalf("loop t=2.550: %+v", d)
	}
	if _, err := tr.Generator(1); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
}

func TestReplayMatchesRecordedSequence(t *testing.T) {
	rec, err := NewRecorder("seq", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner := &rampGen{}
	g, err := rec.Wrap(0, 0, inner)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	var env workload.Env
	var live []workload.Demand
	for i := 0; i < 300; i++ {
		live = append(live, g.Demand(float64(i)*0.001, env, rng))
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := tr.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := dec.Generator(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if d := rp.Demand(float64(i)*0.001, env, rng); d != live[i] {
			t.Fatalf("interval %d: replay %+v != live %+v", i, d, live[i])
		}
	}
}

func TestSpecRequiresUniformStagger(t *testing.T) {
	tr := testTrace() // starts {0, 5} with 2 threads: uniform
	spec, err := tr.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Instances != 2 || spec.StaggerSec != 5 || spec.Name != "replay:unit" {
		t.Fatalf("spec: %+v", spec)
	}
	g := spec.Make(0, sim.NewRNG(1))
	if g.Name() != "replay:unit" {
		t.Fatalf("generator name %q", g.Name())
	}
	tr3 := testTrace()
	tr3.Header.Threads = 3
	tr3.Header.Starts = []float64{0, 5, 11}
	tr3.Header.Samples = 9
	tr3.Streams = append(tr3.Streams, []Run{{T: 0, N: 2, D: workload.Demand{Active: 1}}})
	if _, err := tr3.Spec(); err == nil || !strings.Contains(err.Error(), "stagger") {
		t.Fatalf("non-uniform stagger: %v", err)
	}
}

func TestEmptyStreamReplaysIdle(t *testing.T) {
	tr := testTrace()
	tr.Streams[1] = nil
	tr.Header.Samples = 5
	enc, err := tr.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := dec.Generator(1)
	if err != nil {
		t.Fatal(err)
	}
	if d := rp.Demand(1.0, workload.Env{}, sim.NewRNG(1)); d != (workload.Demand{}) {
		t.Fatalf("empty stream demanded %+v", d)
	}
}

type constGen struct{ d workload.Demand }

func (g constGen) Name() string { return "const" }
func (g constGen) Demand(t float64, env workload.Env, rng *sim.RNG) workload.Demand {
	return g.d
}

// rampGen produces a distinct demand every interval (worst case for RLE).
type rampGen struct{ n int }

func (g *rampGen) Name() string { return "ramp" }
func (g *rampGen) Demand(t float64, env workload.Env, rng *sim.RNG) workload.Demand {
	g.n++
	return workload.Demand{Active: float64(g.n%100) / 100, UopsPerCycle: 1}
}
