package wtrace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// The WTR1 wire layout, all integers and floats little-endian:
//
//	magic       "WTR1"                          4 bytes
//	version     uint32                          4 bytes
//	headerLen   uint32                          4 bytes
//	header      canonical JSON (Header)         headerLen bytes
//	streams     Threads × stream
//	fingerprint uint64 (FNV-1a 64 of all preceding bytes)
//
// where each stream is:
//
//	runCount    uint32
//	runs        runCount × (T float64, N uint32,
//	                        15 × metric float64, flags uint8)
//
// The header JSON is canonical: Decode re-marshals the parsed header
// and requires byte equality, so for every decodable trace
// encode(decode(bytes)) == bytes exactly — the fuzz round-trip bar.
const (
	magic      = "WTR1"
	runBytes   = 8 + 4 + numMetrics*8 + 1
	trailerLen = 8

	// maxHeaderLen bounds the JSON header; the canonical header for the
	// largest plausible machine is a few KB.
	maxHeaderLen = 1 << 20
	// maxThreads bounds the stream count against absurd headers.
	maxThreads = 1 << 16
)

// fnv1a64 matches align.Fingerprint's digest: FNV-1a 64.
type fnv1a64 uint64

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func newFNV() fnv1a64 { return fnvOffset }

func (h fnv1a64) update(p []byte) fnv1a64 {
	v := uint64(h)
	for _, b := range p {
		v ^= uint64(b)
		v *= fnvPrime
	}
	return fnv1a64(v)
}

// headerJSON produces the canonical header bytes.
func headerJSON(h *Header) ([]byte, error) {
	b, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("wtrace: marshal header: %w", err)
	}
	return b, nil
}

// EncodeBytes serializes the trace in WTR1 format.
func (tr *Trace) EncodeBytes() ([]byte, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	hdr, err := headerJSON(&tr.Header)
	if err != nil {
		return nil, err
	}
	if len(hdr) > maxHeaderLen {
		return nil, fmt.Errorf("wtrace: header too large (%d bytes)", len(hdr))
	}
	size := len(magic) + 4 + 4 + len(hdr) + trailerLen
	for _, runs := range tr.Streams {
		size += 4 + len(runs)*runBytes
	}
	buf := make([]byte, 0, size)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	for _, runs := range tr.Streams {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(runs)))
		for ri := range runs {
			r := &runs[ri]
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.T))
			buf = binary.LittleEndian.AppendUint32(buf, r.N)
			v, flags := demandValues(&r.D)
			for _, f := range v {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
			}
			buf = append(buf, flags)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(newFNV().update(buf)))
	return buf, nil
}

// Encode writes the WTR1 serialization to w.
func (tr *Trace) Encode(w io.Writer) error {
	b, err := tr.EncodeBytes()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// WriteFile serializes the trace to path.
func (tr *Trace) WriteFile(path string) error {
	b, err := tr.EncodeBytes()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Fingerprint returns the trace's content digest — the hex form of the
// FNV-1a 64 trailer of its WTR1 serialization (same digest family as
// align.Fingerprint, so golden tests pin both the same way).
func (tr *Trace) Fingerprint() (string, error) {
	b, err := tr.EncodeBytes()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", binary.LittleEndian.Uint64(b[len(b)-trailerLen:])), nil
}

// decodeErr wraps every decode rejection with enough context to act on.
func decodeErr(format string, args ...any) error {
	return fmt.Errorf("wtrace: decode: "+format, args...)
}

// DecodeBytes parses and fully validates a WTR1 serialization. It never
// panics on arbitrary input, rejects unknown versions, non-canonical or
// unknown-field headers, NaN/Inf rates, non-monotonic timestamps,
// unknown flag bits, truncated or trailing bytes, and fingerprint
// mismatches. For any accepted input, re-encoding reproduces the input
// bytes exactly.
func DecodeBytes(data []byte) (*Trace, error) {
	off := 0
	need := func(n int) ([]byte, error) {
		if n < 0 || len(data)-off < n {
			return nil, decodeErr("truncated at byte %d (need %d more)", off, n)
		}
		b := data[off : off+n]
		off += n
		return b, nil
	}
	m, err := need(len(magic))
	if err != nil {
		return nil, err
	}
	if string(m) != magic {
		return nil, decodeErr("bad magic %q", m)
	}
	b, err := need(4)
	if err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(b); v != Version {
		return nil, decodeErr("unknown version %d (want %d)", v, Version)
	}
	b, err = need(4)
	if err != nil {
		return nil, err
	}
	hlen := binary.LittleEndian.Uint32(b)
	if hlen > maxHeaderLen {
		return nil, decodeErr("header length %d exceeds %d", hlen, maxHeaderLen)
	}
	hdrBytes, err := need(int(hlen))
	if err != nil {
		return nil, err
	}
	var hdr Header
	dec := json.NewDecoder(bytes.NewReader(hdrBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&hdr); err != nil {
		return nil, decodeErr("header: %v", err)
	}
	if dec.More() {
		return nil, decodeErr("header: trailing JSON")
	}
	canon, err := headerJSON(&hdr)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(canon, hdrBytes) {
		return nil, decodeErr("non-canonical header encoding")
	}
	if hdr.Threads < 1 || hdr.Threads > maxThreads {
		return nil, decodeErr("thread count %d out of range [1,%d]", hdr.Threads, maxThreads)
	}
	tr := &Trace{Header: hdr, Streams: make([][]Run, hdr.Threads)}
	for ti := 0; ti < hdr.Threads; ti++ {
		b, err = need(4)
		if err != nil {
			return nil, err
		}
		count := binary.LittleEndian.Uint32(b)
		// Bound the allocation by the bytes actually present so a
		// forged count cannot balloon memory.
		if uint64(count)*runBytes > uint64(len(data)-off) {
			return nil, decodeErr("thread %d claims %d runs but only %d bytes remain", ti, count, len(data)-off)
		}
		runs := make([]Run, count)
		for ri := range runs {
			rb, err := need(runBytes)
			if err != nil {
				return nil, err
			}
			r := &runs[ri]
			r.T = math.Float64frombits(binary.LittleEndian.Uint64(rb[0:8]))
			r.N = binary.LittleEndian.Uint32(rb[8:12])
			var v [numMetrics]float64
			for mi := 0; mi < numMetrics; mi++ {
				v[mi] = math.Float64frombits(binary.LittleEndian.Uint64(rb[12+mi*8 : 20+mi*8]))
			}
			flags := rb[runBytes-1]
			if flags&^flagsKnown != 0 {
				return nil, decodeErr("thread %d run %d has unknown flag bits %#x", ti, ri, flags)
			}
			r.D = demandFromValues(&v, flags)
			// Canonicality: -0.0 and NaN payload variants would decode
			// to a Demand that re-encodes differently only if the bit
			// pattern differs; re-check the exact bits.
			if w, wf := demandValues(&r.D); wf != flags {
				return nil, decodeErr("thread %d run %d flags not canonical", ti, ri)
			} else {
				for mi := range w {
					if math.Float64bits(w[mi]) != math.Float64bits(v[mi]) {
						return nil, decodeErr("thread %d run %d metric %d not canonical", ti, ri, mi)
					}
				}
			}
		}
		tr.Streams[ti] = runs
	}
	b, err = need(trailerLen)
	if err != nil {
		return nil, err
	}
	want := binary.LittleEndian.Uint64(b)
	got := uint64(newFNV().update(data[:off-trailerLen]))
	if got != want {
		return nil, decodeErr("fingerprint mismatch: body %016x, trailer %016x", got, want)
	}
	if off != len(data) {
		return nil, decodeErr("%d trailing bytes", len(data)-off)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Decode reads a full WTR1 serialization from r.
func Decode(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(io.LimitReader(r, 1<<30))
	if err != nil {
		return nil, err
	}
	return DecodeBytes(data)
}

// ReadFile decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(data)
}
