package wtrace

import (
	"testing"

	"trickledown/internal/align"
	"trickledown/internal/machine"
	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

// TestMixedRecordReplayLiveEquality replicates cmd/tdpower's
// -placement + -record-wtrace path (wrapPlacements) and checks the
// replayed dataset against the live run's.
func TestMixedRecordReplayLiveEquality(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Seed = 7
	placements := []machine.Placement{
		{Workload: "gcc", Thread: 0},
		{Workload: "dbt-2", Thread: 2, StartSec: 1},
	}
	rec, err := NewRecorder("mixed", 1/cfg.Slice.Seconds(), cfg.NumCPUs*cfg.ThreadsPerCPU)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]float64{}
	for i := range placements {
		pl := &placements[i]
		spec, err := workload.ByName(pl.Workload)
		if err != nil {
			t.Fatal(err)
		}
		seen[spec.Name] = spec.ChipsetDomainBias
		inner := spec.Make
		thread, start := pl.Thread, pl.StartSec
		wspec := spec
		wspec.Make = func(instance int, rng *sim.RNG) workload.Generator {
			g := inner(instance, rng)
			w, err := rec.Wrap(thread, start, g)
			if err != nil {
				return g
			}
			return w
		}
		pl.Spec = &wspec
	}
	var bias float64
	for _, b := range seen {
		bias += b
	}
	rec.SetChipsetBias(bias / float64(len(seen)))

	live, err := machine.NewMixed(cfg, placements)
	if err != nil {
		t.Fatal(err)
	}
	live.Run(10)
	liveDS, err := live.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	liveFP := align.Fingerprint(liveDS)

	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	rpl, err := tr.Placements()
	if err != nil {
		t.Fatal(err)
	}
	replay, err := machine.NewMixed(cfg, rpl)
	if err != nil {
		t.Fatal(err)
	}
	replay.Run(10)
	rpDS, err := replay.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if rpFP := align.Fingerprint(rpDS); rpFP != liveFP {
		t.Errorf("mixed replay dataset %s != live dataset %s", rpFP, liveFP)
	}
}
