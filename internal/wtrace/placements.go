package wtrace

import (
	"trickledown/internal/machine"
	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

// Placements binds every recorded stream to its hardware thread with
// its recorded start offset. Unlike Spec it does not require a uniform
// stagger: each placement carries the replay spec directly and its own
// StartSec, so arbitrary recorded layouts (e.g. a mixed tdpower
// -placement run) replay exactly. Feed the result to machine.NewMixed
// or cluster.AddMixedConfig on a machine with at least Header.Threads
// hardware threads.
func (tr *Trace) Placements() ([]machine.Placement, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	h := tr.Header
	shared := tr
	// One shared spec: the machine numbers instances per spec name in
	// placement order, so thread i's placement gets instance i and
	// replays stream i.
	spec := workload.Spec{
		Name:            "replay:" + h.Workload,
		Class:           workload.ClassInteger,
		Instances:       h.Threads,
		DefaultDuration: tr.Duration(),
		Make: func(instance int, rng *sim.RNG) workload.Generator {
			g, err := shared.generator(instance, false)
			if err != nil {
				return &Replay{name: "replay:" + h.Workload, rate: h.RatePerSec}
			}
			return g
		},
		ChipsetDomainBias: h.ChipsetDomainBias,
	}
	out := make([]machine.Placement, h.Threads)
	for i := range out {
		out[i] = machine.Placement{
			Workload: spec.Name,
			Thread:   i,
			StartSec: h.Starts[i],
			Spec:     &spec,
		}
	}
	return out, nil
}
