// Package wtrace records and replays workload event-rate traces.
//
// A trace captures, at the simulation slice rate, the per-interval
// demand every thread of a workload placed on the machine — the
// per-interval performance-event *rates* the paper's trickle-down
// models consume, upstream of the architectural machinery that turns
// demand into counters. Because the models (Eq. 2-7) are
// workload-agnostic functions of those rates, a recorded trace replayed
// through sim/machine/cluster/serve reproduces the original run
// bit-for-bit: per-thread generator RNG streams are independent
// rng.Split() children, so a replay generator that consumes no
// randomness perturbs nothing else.
//
// Traces are serialized in the versioned, self-describing WTR1 format
// (see codec.go): a canonical JSON header (schema version, workload
// name, sample rate, metric names, per-thread start offsets, total
// sample count), run-length-encoded per-thread demand streams, and an
// FNV-1a 64 fingerprint trailer. Decoding is strict: unknown versions,
// unknown metrics, NaN/Inf rates, non-monotonic timestamps and
// fingerprint mismatches are all rejected.
package wtrace

import (
	"fmt"
	"math"

	"trickledown/internal/sim"
	"trickledown/internal/workload"
)

// Version is the WTR1 schema version this package writes and the only
// one it accepts.
const Version = 1

// Header is the self-describing trace preamble. It is serialized as
// canonical JSON (the exact bytes `encoding/json` produces for this
// struct) so that encode(decode(trace)) is byte-identical.
type Header struct {
	// Workload names what was recorded (a registry name or a free-form
	// label for mixed placements).
	Workload string `json:"workload"`
	// RatePerSec is the demand sampling rate (1/slice; 1000 for the
	// default 1 ms slice).
	RatePerSec float64 `json:"rate_per_sec"`
	// Threads is the number of recorded demand streams.
	Threads int `json:"threads"`
	// Starts holds each stream's start offset in machine seconds
	// (the Placement.StartSec stagger of the recorded run).
	Starts []float64 `json:"starts"`
	// Metrics names the demand fields, in stream column order. Decode
	// rejects any list that is not exactly Metrics() — the trace is
	// self-describing, not self-extending.
	Metrics []string `json:"metrics"`
	// Samples is the total interval count across all streams (the sum
	// of every run's length), cross-checked at decode.
	Samples uint64 `json:"samples"`
	// ChipsetDomainBias carries the recorded workload's chipset
	// measurement bias (see workload.Spec) so a replay reproduces the
	// ground-truth chipset rail bit-for-bit.
	ChipsetDomainBias float64 `json:"chipset_bias"`
}

// Run is one run-length-encoded span of identical demand: N consecutive
// intervals starting at generator-local time T (seconds) all demanded D.
type Run struct {
	T float64
	N uint32
	D workload.Demand
}

// Trace is an in-memory decoded trace: one run-list per thread.
// Streams may be empty (a thread whose start offset exceeded the
// recorded duration demands nothing).
type Trace struct {
	Header  Header
	Streams [][]Run
}

// Metrics returns the canonical demand metric names, in the column
// order of the WTR1 binary stream. The two boolean demand fields
// (RandomIO, Sync) travel in a flags byte and are not listed.
func Metrics() []string {
	return []string{
		"active", "uops_per_cycle", "spec_activity", "l2_per_uop",
		"l3_miss_per_kuop", "dirty_evict_frac", "prefetchability",
		"tlb_miss_per_muop", "uc_per_mcycle", "write_frac",
		"mem_locality", "disk_read_bytes", "disk_write_bytes",
		"net_rx_bytes", "net_tx_bytes",
	}
}

// numMetrics is the float column count of a demand record.
const numMetrics = 15

// demandValues flattens a Demand into the canonical metric columns plus
// the boolean flags byte.
func demandValues(d *workload.Demand) (v [numMetrics]float64, flags uint8) {
	v = [numMetrics]float64{
		d.Active, d.UopsPerCycle, d.SpecActivity, d.L2PerUop,
		d.L3MissPerKuop, d.DirtyEvictFrac, d.Prefetchability,
		d.TLBMissPerMuop, d.UCPerMcycle, d.WriteFrac,
		d.MemLocality, d.DiskReadBytes, d.DiskWriteBytes,
		d.NetRxBytes, d.NetTxBytes,
	}
	if d.RandomIO {
		flags |= flagRandomIO
	}
	if d.Sync {
		flags |= flagSync
	}
	return v, flags
}

// demandFromValues is the inverse of demandValues.
func demandFromValues(v *[numMetrics]float64, flags uint8) workload.Demand {
	return workload.Demand{
		Active: v[0], UopsPerCycle: v[1], SpecActivity: v[2],
		L2PerUop: v[3], L3MissPerKuop: v[4], DirtyEvictFrac: v[5],
		Prefetchability: v[6], TLBMissPerMuop: v[7], UCPerMcycle: v[8],
		WriteFrac: v[9], MemLocality: v[10], DiskReadBytes: v[11],
		DiskWriteBytes: v[12], NetRxBytes: v[13], NetTxBytes: v[14],
		RandomIO: flags&flagRandomIO != 0,
		Sync:     flags&flagSync != 0,
	}
}

const (
	flagRandomIO uint8 = 1 << 0
	flagSync     uint8 = 1 << 1
	flagsKnown         = flagRandomIO | flagSync
)

// Validate checks the structural invariants shared by encode and
// decode: a finite positive rate, consistent thread/start/stream
// counts, the canonical metric list, finite demand values, strictly
// monotonic non-overlapping run timestamps, and an exact sample total.
func (tr *Trace) Validate() error {
	h := &tr.Header
	if h.Workload == "" {
		return fmt.Errorf("wtrace: empty workload name")
	}
	if !(h.RatePerSec > 0) || math.IsInf(h.RatePerSec, 0) {
		return fmt.Errorf("wtrace: invalid sample rate %v", h.RatePerSec)
	}
	if h.Threads < 1 {
		return fmt.Errorf("wtrace: need at least one thread, got %d", h.Threads)
	}
	if len(h.Starts) != h.Threads {
		return fmt.Errorf("wtrace: %d starts for %d threads", len(h.Starts), h.Threads)
	}
	for i, s := range h.Starts {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			return fmt.Errorf("wtrace: invalid start %v for thread %d", s, i)
		}
	}
	if math.IsNaN(h.ChipsetDomainBias) || math.IsInf(h.ChipsetDomainBias, 0) {
		return fmt.Errorf("wtrace: invalid chipset bias %v", h.ChipsetDomainBias)
	}
	want := Metrics()
	if len(h.Metrics) != len(want) {
		return fmt.Errorf("wtrace: %d metrics, want %d", len(h.Metrics), len(want))
	}
	for i, m := range h.Metrics {
		if m != want[i] {
			return fmt.Errorf("wtrace: metric %d is %q, want %q", i, m, want[i])
		}
	}
	if len(tr.Streams) != h.Threads {
		return fmt.Errorf("wtrace: %d streams for %d threads", len(tr.Streams), h.Threads)
	}
	half := 0.5 / h.RatePerSec
	var total uint64
	for ti, runs := range tr.Streams {
		prevEnd := math.Inf(-1)
		prevT := math.Inf(-1)
		for ri := range runs {
			r := &runs[ri]
			if r.N < 1 {
				return fmt.Errorf("wtrace: thread %d run %d has zero length", ti, ri)
			}
			if math.IsNaN(r.T) || math.IsInf(r.T, 0) || r.T < 0 {
				return fmt.Errorf("wtrace: thread %d run %d has invalid time %v", ti, ri, r.T)
			}
			if r.T <= prevT || r.T < prevEnd-half {
				return fmt.Errorf("wtrace: thread %d run %d time %v not monotonic", ti, ri, r.T)
			}
			v, _ := demandValues(&r.D)
			for mi, f := range v {
				if math.IsNaN(f) || math.IsInf(f, 0) {
					return fmt.Errorf("wtrace: thread %d run %d metric %s is %v", ti, ri, want[mi], f)
				}
			}
			prevT = r.T
			prevEnd = r.T + float64(r.N)/h.RatePerSec
			total += uint64(r.N)
		}
	}
	if total != h.Samples {
		return fmt.Errorf("wtrace: header claims %d samples, streams hold %d", h.Samples, total)
	}
	return nil
}

// Intervals returns the total interval count of one thread's stream.
func (tr *Trace) Intervals(thread int) int64 {
	if thread < 0 || thread >= len(tr.Streams) {
		return 0
	}
	var n int64
	for _, r := range tr.Streams[thread] {
		n += int64(r.N)
	}
	return n
}

// Duration returns the trace length in machine seconds: the latest
// stream end (start offset + recorded intervals / rate).
func (tr *Trace) Duration() float64 {
	var d float64
	for ti := range tr.Streams {
		end := tr.Header.Starts[ti] + float64(tr.Intervals(ti))/tr.Header.RatePerSec
		if end > d {
			d = end
		}
	}
	return d
}

// Generator returns a replay generator for one thread's stream. The
// generator implements workload.Generator, consumes no RNG, and holds
// only a cursor over the shared read-only run list, so one Trace can
// feed many machines concurrently (each via its own Generator).
// Past the end of the stream the generator repeats the final interval's
// demand; LoopGenerator wraps around instead.
func (tr *Trace) Generator(thread int) (*Replay, error) {
	return tr.generator(thread, false)
}

// LoopGenerator is Generator with wrap-around: interval i past the end
// replays interval i mod length, turning a recorded day into an
// arbitrarily long diurnal tape.
func (tr *Trace) LoopGenerator(thread int) (*Replay, error) {
	return tr.generator(thread, true)
}

func (tr *Trace) generator(thread int, loop bool) (*Replay, error) {
	if thread < 0 || thread >= len(tr.Streams) {
		return nil, fmt.Errorf("wtrace: thread %d out of range [0,%d)", thread, len(tr.Streams))
	}
	return &Replay{
		name:  "replay:" + tr.Header.Workload,
		runs:  tr.Streams[thread],
		rate:  tr.Header.RatePerSec,
		total: tr.Intervals(thread),
		loop:  loop,
	}, nil
}

// Spec bridges a trace back into the workload.Spec world so the
// unchanged machine/cluster constructors can run it. It requires the
// recorded per-thread starts to form a uniform stagger (which every
// registry spec and Recorder-wrapped run produces).
func (tr *Trace) Spec() (workload.Spec, error) {
	if err := tr.Validate(); err != nil {
		return workload.Spec{}, err
	}
	h := tr.Header
	stagger := 0.0
	if h.Threads > 1 {
		stagger = h.Starts[1] - h.Starts[0]
	}
	for i := 1; i < h.Threads; i++ {
		want := h.Starts[0] + float64(i)*stagger
		if math.Abs(h.Starts[i]-want) > 1e-9 {
			return workload.Spec{}, fmt.Errorf("wtrace: non-uniform stagger (start[%d]=%v, want %v); place threads explicitly", i, h.Starts[i], want)
		}
	}
	shared := tr
	return workload.Spec{
		Name:            "replay:" + h.Workload,
		Class:           workload.ClassInteger,
		Instances:       h.Threads,
		StaggerSec:      stagger,
		DefaultDuration: tr.Duration(),
		Make: func(instance int, rng *sim.RNG) workload.Generator {
			g, err := shared.generator(instance, false)
			if err != nil {
				return &Replay{name: "replay:" + h.Workload, rate: h.RatePerSec}
			}
			return g
		},
		ChipsetDomainBias: h.ChipsetDomainBias,
	}, nil
}

// Replay plays one recorded stream back as a workload.Generator. It
// maps the slice time t to an interval index by rounding t*rate, and
// keeps a run cursor so sequential stepping is O(1) per slice
// (out-of-order times fall back to a rescan from the stream head).
type Replay struct {
	name     string
	runs     []Run
	rate     float64
	total    int64
	loop     bool
	run      int   // cursor: current run index
	runStart int64 // cursor: interval index of runs[run]'s first interval
}

// Name implements workload.Generator.
func (g *Replay) Name() string { return g.name }

// Demand implements workload.Generator. It consumes no randomness, so
// replayed threads leave every other RNG stream of the machine (drift,
// chipset coupling, DAQ noise, co-placed live generators) untouched —
// the property the byte-identical replay guarantee rests on.
func (g *Replay) Demand(t float64, env workload.Env, rng *sim.RNG) workload.Demand {
	if g.total == 0 {
		return workload.Demand{}
	}
	i := int64(math.Floor(t*g.rate + 0.5))
	if i < 0 {
		i = 0
	}
	if i >= g.total {
		if g.loop {
			i %= g.total
		} else {
			i = g.total - 1
		}
	}
	if i < g.runStart {
		g.run, g.runStart = 0, 0
	}
	for i >= g.runStart+int64(g.runs[g.run].N) {
		g.runStart += int64(g.runs[g.run].N)
		g.run++
	}
	return g.runs[g.run].D
}

// Recorder captures per-thread demand streams from a live run. Wrap
// each placed generator before the run; after Server.Run, Trace()
// yields the finished trace. A Recorder belongs to one single-threaded
// machine run and is not safe for concurrent use.
type Recorder struct {
	workload string
	rate     float64
	bias     float64
	starts   []float64
	streams  [][]Run
	wrapped  []bool
}

// SetChipsetBias records the run's chipset domain bias (for a single
// workload its spec's bias; for mixed placements the machine's average
// over distinct workloads) so replays reproduce the chipset rail.
func (r *Recorder) SetChipsetBias(b float64) { r.bias = b }

// NewRecorder prepares a recorder for a run with the given stream
// count. ratePerSec must be the machine's slice rate (1/Config.Slice).
func NewRecorder(workloadName string, ratePerSec float64, threads int) (*Recorder, error) {
	if workloadName == "" {
		return nil, fmt.Errorf("wtrace: empty workload name")
	}
	if !(ratePerSec > 0) || math.IsInf(ratePerSec, 0) {
		return nil, fmt.Errorf("wtrace: invalid sample rate %v", ratePerSec)
	}
	if threads < 1 {
		return nil, fmt.Errorf("wtrace: need at least one thread, got %d", threads)
	}
	return &Recorder{
		workload: workloadName,
		rate:     ratePerSec,
		starts:   make([]float64, threads),
		streams:  make([][]Run, threads),
		wrapped:  make([]bool, threads),
	}, nil
}

// Wrap returns a pass-through generator that records stream `thread`
// while delegating to g. startSec is the placement's start offset,
// stored in the trace header so replay can reproduce the stagger.
func (r *Recorder) Wrap(thread int, startSec float64, g workload.Generator) (workload.Generator, error) {
	if thread < 0 || thread >= len(r.streams) {
		return nil, fmt.Errorf("wtrace: thread %d out of range [0,%d)", thread, len(r.streams))
	}
	if r.wrapped[thread] {
		return nil, fmt.Errorf("wtrace: thread %d wrapped twice", thread)
	}
	if math.IsNaN(startSec) || math.IsInf(startSec, 0) || startSec < 0 {
		return nil, fmt.Errorf("wtrace: invalid start %v for thread %d", startSec, thread)
	}
	r.wrapped[thread] = true
	r.starts[thread] = startSec
	return &recordGen{rec: r, thread: thread, inner: g}, nil
}

// Trace assembles and validates the recorded trace.
func (r *Recorder) Trace() (*Trace, error) {
	tr := &Trace{
		Header: Header{
			Workload:          r.workload,
			RatePerSec:        r.rate,
			Threads:           len(r.streams),
			Starts:            append([]float64(nil), r.starts...),
			Metrics:           Metrics(),
			ChipsetDomainBias: r.bias,
		},
		Streams: make([][]Run, len(r.streams)),
	}
	var total uint64
	for i, runs := range r.streams {
		tr.Streams[i] = append([]Run(nil), runs...)
		for _, run := range runs {
			total += uint64(run.N)
		}
	}
	tr.Header.Samples = total
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// recordGen tees one thread's demand stream into the recorder.
type recordGen struct {
	rec    *Recorder
	thread int
	inner  workload.Generator
}

func (g *recordGen) Name() string { return g.inner.Name() }

func (g *recordGen) Demand(t float64, env workload.Env, rng *sim.RNG) workload.Demand {
	d := g.inner.Demand(t, env, rng)
	g.rec.observe(g.thread, t, d)
	return d
}

// observe appends one interval to a stream, merging into the previous
// run when the demand is identical and the interval is contiguous.
func (r *Recorder) observe(thread int, t float64, d workload.Demand) {
	s := &r.streams[thread]
	half := 0.5 / r.rate
	if n := len(*s); n > 0 {
		last := &(*s)[n-1]
		expected := last.T + float64(last.N)/r.rate
		if d == last.D && math.Abs(t-expected) <= half && last.N < math.MaxUint32 {
			last.N++
			return
		}
	}
	*s = append(*s, Run{T: t, N: 1, D: d})
}

// RecordSpec wraps a workload spec so every instance it makes is
// recorded. The recorder must have been sized with threads ==
// spec.Instances; instance i records stream i with the spec's stagger.
func RecordSpec(spec workload.Spec, rec *Recorder) (workload.Spec, error) {
	if len(rec.streams) != spec.Instances {
		return workload.Spec{}, fmt.Errorf("wtrace: recorder has %d streams for %d instances", len(rec.streams), spec.Instances)
	}
	rec.SetChipsetBias(spec.ChipsetDomainBias)
	inner := spec.Make
	out := spec
	out.Make = func(instance int, rng *sim.RNG) workload.Generator {
		g := inner(instance, rng)
		w, err := rec.Wrap(instance, float64(instance)*spec.StaggerSec, g)
		if err != nil {
			// Duplicate or out-of-range instance: record nothing rather
			// than corrupt the trace; the run itself is unaffected.
			return g
		}
		return w
	}
	return out, nil
}
