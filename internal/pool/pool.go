// Package pool provides the bounded worker pool behind every parallel
// fan-out in the system: cluster node stepping, table/figure generation
// and any future batch work. It exists so concurrency is configured in
// one place (a worker budget) instead of ad-hoc `go func` blocks, and so
// results stay deterministic: work items are identified by index, each
// item's result lands in that item's slot, and errors are aggregated in
// index order regardless of completion order.
//
// The bound is shared. Two Run calls on the same Pool together hold at
// most Workers() items in flight, so a process-wide pool acts as one
// scheduler for every concurrent caller.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"trickledown/internal/telemetry"
)

// Pool telemetry is process-wide (all pools feed the same scheduler
// picture): how much work was asked for, how much is in flight, how long
// items wait for a slot and how long they run. Items are coarse (whole
// node runs, whole table simulations), so two time.Now calls per item
// are noise.
var (
	mTasksQueued = telemetry.NewCounter("pool_tasks_queued_total",
		"work items submitted to a pool (including items abandoned on cancellation)")
	mTasksCompleted = telemetry.NewCounter("pool_tasks_completed_total",
		"work items that finished running")
	mTasksRunning = telemetry.NewGauge("pool_tasks_running",
		"work items currently holding a pool slot")
	mQueueWait = telemetry.NewHistogram("pool_queue_wait_seconds",
		"time from submission to acquiring a pool slot", nil)
	mTaskDuration = telemetry.NewHistogram("pool_task_duration_seconds",
		"work item execution time", nil)
	mPanics = telemetry.NewCounter("pool_panics_recovered_total",
		"work item panics recovered and converted to *PanicError")
	mRetries = telemetry.NewCounter("pool_task_retries_total",
		"work item re-executions after a failed attempt")
)

// PanicError is a work item panic converted to an error: the pool (and
// callers layering their own recovery) never let one panicking task take
// down the process or deadlock the other items. Value is the recovered
// panic value; Stack is the panicking goroutine's stack, captured at
// recovery time for post-mortem logging.
type PanicError struct {
	Value any
	Stack []byte
}

// NewPanicError captures the current goroutine's stack around a
// recovered panic value. Call it only from inside a deferred recover.
func NewPanicError(value any) *PanicError {
	return &PanicError{Value: value, Stack: debug.Stack()}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Retry is a per-task retry policy for RunRetry. The zero value (and any
// Attempts < 2) means run each task exactly once.
type Retry struct {
	// Attempts is the maximum number of tries per task, including the
	// first; values below 1 behave as 1.
	Attempts int
	// BaseDelay is the wait before the first retry; it doubles after
	// every failed attempt (capped at MaxDelay). Zero means no wait.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; zero means uncapped.
	MaxDelay time.Duration
}

// maxBackoff bounds the exponential doubling when MaxDelay is zero
// ("uncapped"). time.Duration is an int64 of nanoseconds: doubling past
// its ceiling wraps negative, and a negative timer fires immediately —
// turning a polite retry schedule into a hot loop exactly when the
// dependency is down hardest.
const maxBackoff = time.Duration(1) << 62

// Backoff returns the wait before retry number n (1-based): BaseDelay
// doubled per retry, capped at MaxDelay (or at an internal ceiling when
// MaxDelay is zero, so the doubling can never overflow time.Duration to
// a negative — and therefore immediate — wait). Exported so callers
// running their own retry loops (internal/serve's estimation workers)
// share one correct schedule instead of re-deriving it.
func (r Retry) Backoff(n int) time.Duration { return r.backoff(n) }

// backoff returns the wait before retry number n (1-based), doubling
// from BaseDelay and capped at MaxDelay (or maxBackoff when MaxDelay is
// zero, so the doubling can never overflow to a negative wait).
func (r Retry) backoff(n int) time.Duration {
	d := r.BaseDelay
	for i := 1; i < n; i++ {
		if d >= maxBackoff/2 {
			d = maxBackoff
			break
		}
		d *= 2
		if r.MaxDelay > 0 && d >= r.MaxDelay {
			return r.MaxDelay
		}
	}
	if r.MaxDelay > 0 && d > r.MaxDelay {
		d = r.MaxDelay
	}
	return d
}

// Pool is a bounded parallel executor. The zero value is not usable; use
// New. A Pool is safe for concurrent use and carries no per-Run state.
type Pool struct {
	// sem is the shared concurrency budget: one slot per in-flight item
	// across all Run calls on this pool.
	sem chan struct{}
}

// New returns a pool bounding in-flight work to workers items. A
// non-positive count defaults to runtime.GOMAXPROCS(0), the number of
// CPUs the Go scheduler will actually use.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Run executes fn(ctx, i) for every i in [0, n), at most Workers() items
// in flight at once (shared with every other concurrent Run on the same
// pool). It waits for all dispatched items and returns the aggregate of
// every item error, joined in index order — it does not stop at the
// first failure, so a caller sees all failed items at once.
//
// Cancellation: when ctx is cancelled, no further items are dispatched,
// already-running items are left to observe ctx themselves, and the
// returned error includes ctx.Err(). Run must not be called from inside
// one of its own work functions: a worker waiting on the shared budget
// while holding a slot can deadlock the pool.
//
// A panicking work item does not crash the process or wedge the pool:
// the panic is recovered, wrapped as a *PanicError carrying the stack,
// and joined into the aggregate error at the item's index like any other
// failure.
func (p *Pool) Run(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return p.RunRetry(ctx, n, Retry{}, fn)
}

// RunRetry is Run with a per-task retry policy: a failed item (error or
// recovered panic) is re-executed up to r.Attempts times total, waiting
// r.BaseDelay doubled per retry (capped at r.MaxDelay) between attempts.
// The backoff wait is context-aware: cancellation during a wait abandons
// the remaining attempts and reports the last attempt's error alongside
// ctx.Err(). Only the final attempt's error reaches the aggregate.
func (p *Pool) RunRetry(ctx context.Context, n int, r Retry, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	// One slot per item plus one for the cancellation error, so every
	// writer has a distinct slot and the join order is deterministic.
	errs := make([]error, n+1)
	var wg sync.WaitGroup
dispatch:
	for i := 0; i < n; i++ {
		mTasksQueued.Inc()
		enqueued := time.Now()
		select {
		case <-ctx.Done():
			errs[n] = ctx.Err()
			break dispatch
		case p.sem <- struct{}{}:
			mQueueWait.Observe(time.Since(enqueued).Seconds())
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-p.sem }()
				mTasksRunning.Add(1)
				started := time.Now()
				defer func() {
					mTaskDuration.Observe(time.Since(started).Seconds())
					mTasksRunning.Add(-1)
					mTasksCompleted.Inc()
				}()
				errs[i] = runAttempts(ctx, i, r, fn)
			}(i)
		}
	}
	wg.Wait()
	return errors.Join(errs...)
}

// runAttempts executes one work item under the retry policy, holding the
// caller's pool slot across attempts (a retry is the same work item, not
// new work).
func runAttempts(ctx context.Context, i int, r Retry, fn func(ctx context.Context, i int) error) error {
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = runProtected(ctx, i, fn)
		if err == nil || attempt >= attempts {
			return err
		}
		mRetries.Inc()
		if wait := r.backoff(attempt); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return errors.Join(err, ctx.Err())
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return errors.Join(err, ctx.Err())
		}
	}
}

// runProtected runs one attempt with panic recovery.
func runProtected(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			mPanics.Inc()
			err = NewPanicError(v)
		}
	}()
	return fn(ctx, i)
}
