package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryItem(t *testing.T) {
	p := New(3)
	const n = 50
	done := make([]bool, n)
	err := p.Run(context.Background(), n, func(_ context.Context, i int) error {
		done[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if !d {
			t.Errorf("item %d not executed", i)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 4
	p := New(workers)
	var cur, peak atomic.Int64
	err := p.Run(context.Background(), 64, func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds bound %d", got, workers)
	}
}

// TestRunSharedBound checks that two concurrent Run calls share one
// budget — the pool is a process-wide scheduler, not a per-call one.
func TestRunSharedBound(t *testing.T) {
	const workers = 3
	p := New(workers)
	var cur, peak atomic.Int64
	body := func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Run(context.Background(), 20, body); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d across two Runs exceeds shared bound %d", got, workers)
	}
}

func TestRunAggregatesAllErrors(t *testing.T) {
	p := New(2)
	err := p.Run(context.Background(), 6, func(_ context.Context, i int) error {
		if i%2 == 1 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	msg := err.Error()
	for _, want := range []string{"item 1 failed", "item 3 failed", "item 5 failed"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregate missing %q: %v", want, msg)
		}
	}
	// Index order regardless of completion order.
	if strings.Index(msg, "item 1") > strings.Index(msg, "item 5") {
		t.Errorf("errors not joined in index order: %v", msg)
	}
}

func TestRunCancellation(t *testing.T) {
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := p.Run(ctx, 100, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n == 100 {
		t.Error("cancellation did not stop dispatch")
	}
}

func TestRunEmptyAndDefaults(t *testing.T) {
	if err := New(2).Run(context.Background(), 0, nil); err != nil {
		t.Errorf("empty run: %v", err)
	}
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := New(7).Workers(); w != 7 {
		t.Errorf("workers = %d", w)
	}
	// A pre-cancelled context reports cancellation even for n = 0 work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := New(1).Run(ctx, 0, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled empty run err = %v", err)
	}
}
