package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryItem(t *testing.T) {
	p := New(3)
	const n = 50
	done := make([]bool, n)
	err := p.Run(context.Background(), n, func(_ context.Context, i int) error {
		done[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if !d {
			t.Errorf("item %d not executed", i)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 4
	p := New(workers)
	var cur, peak atomic.Int64
	err := p.Run(context.Background(), 64, func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds bound %d", got, workers)
	}
}

// TestRunSharedBound checks that two concurrent Run calls share one
// budget — the pool is a process-wide scheduler, not a per-call one.
func TestRunSharedBound(t *testing.T) {
	const workers = 3
	p := New(workers)
	var cur, peak atomic.Int64
	body := func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Run(context.Background(), 20, body); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d across two Runs exceeds shared bound %d", got, workers)
	}
}

func TestRunAggregatesAllErrors(t *testing.T) {
	p := New(2)
	err := p.Run(context.Background(), 6, func(_ context.Context, i int) error {
		if i%2 == 1 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	msg := err.Error()
	for _, want := range []string{"item 1 failed", "item 3 failed", "item 5 failed"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregate missing %q: %v", want, msg)
		}
	}
	// Index order regardless of completion order.
	if strings.Index(msg, "item 1") > strings.Index(msg, "item 5") {
		t.Errorf("errors not joined in index order: %v", msg)
	}
}

func TestRunCancellation(t *testing.T) {
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := p.Run(ctx, 100, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n == 100 {
		t.Error("cancellation did not stop dispatch")
	}
}

// TestRunRecoversPanic is the regression test for the original behavior,
// where a panicking task crashed the whole process (and, because the
// slot release deferred after the panic never ran in the old layout,
// could wedge the pool): the panic must come back as a *PanicError at
// the task's index, with the other items unaffected.
func TestRunRecoversPanic(t *testing.T) {
	p := New(2)
	var ran atomic.Int64
	err := p.Run(context.Background(), 8, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			panic("injected task panic")
		}
		return nil
	})
	if got := ran.Load(); got != 8 {
		t.Errorf("ran %d items, want 8 (panic starved the pool?)", got)
	}
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want a *PanicError", err)
	}
	if perr.Value != "injected task panic" {
		t.Errorf("PanicError.Value = %v", perr.Value)
	}
	if !strings.Contains(string(perr.Stack), "pool") {
		t.Errorf("PanicError.Stack does not look like a stack:\n%s", perr.Stack)
	}
	// The pool must still be usable after a panic (slot released).
	if err := p.Run(context.Background(), 4, func(context.Context, int) error { return nil }); err != nil {
		t.Errorf("pool unusable after panic: %v", err)
	}
}

// TestRunPanicIndexOrder checks panics join the aggregate in index
// order alongside plain errors.
func TestRunPanicIndexOrder(t *testing.T) {
	p := New(4)
	err := p.Run(context.Background(), 5, func(_ context.Context, i int) error {
		switch i {
		case 1:
			return fmt.Errorf("plain failure %d", i)
		case 3:
			panic(fmt.Sprintf("boom %d", i))
		}
		return nil
	})
	msg := err.Error()
	if !strings.Contains(msg, "plain failure 1") || !strings.Contains(msg, "boom 3") {
		t.Fatalf("aggregate missing failures: %v", msg)
	}
	if strings.Index(msg, "plain failure 1") > strings.Index(msg, "boom 3") {
		t.Errorf("errors not in index order: %v", msg)
	}
}

func TestRunRetrySucceedsAfterTransientFailures(t *testing.T) {
	p := New(2)
	var attempts atomic.Int64
	err := p.RunRetry(context.Background(), 1,
		Retry{Attempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
		func(_ context.Context, i int) error {
			if attempts.Add(1) < 3 {
				return fmt.Errorf("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("retry did not recover transient failure: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestRunRetryExhaustsAttempts(t *testing.T) {
	p := New(1)
	var attempts atomic.Int64
	err := p.RunRetry(context.Background(), 1, Retry{Attempts: 3},
		func(context.Context, int) error {
			attempts.Add(1)
			return fmt.Errorf("permanent failure")
		})
	if err == nil || !strings.Contains(err.Error(), "permanent failure") {
		t.Fatalf("err = %v, want the final attempt's failure", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestRunRetryRetriesPanics(t *testing.T) {
	p := New(1)
	var attempts atomic.Int64
	err := p.RunRetry(context.Background(), 1, Retry{Attempts: 2},
		func(context.Context, int) error {
			if attempts.Add(1) == 1 {
				panic("first attempt explodes")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("panicking first attempt not retried: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// TestRunRetryBackoffHonorsCancellation checks a cancelled context cuts
// the backoff wait short instead of sleeping out the full schedule.
func TestRunRetryBackoffHonorsCancellation(t *testing.T) {
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		done <- p.RunRetry(ctx, 1, Retry{Attempts: 10, BaseDelay: time.Hour},
			func(context.Context, int) error { return fmt.Errorf("always fails") })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled in the join", err)
		}
		if !strings.Contains(err.Error(), "always fails") {
			t.Errorf("err = %v, want the attempt error preserved", err)
		}
		// The schedule is an hour per wait; a context-aware backoff
		// returns in milliseconds. Two seconds of slack absorbs CI noise
		// while still failing any path that actually sleeps.
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("backoff ignored cancellation (took %v)", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunRetry hung in backoff after cancellation")
	}
}

// TestRunRetryZeroDelayStopsWhenCancelled covers the no-backoff retry
// path: with a zero delay there is no timer to interrupt, so the loop
// must still notice a dead context between attempts instead of burning
// through the remaining attempts.
func TestRunRetryZeroDelayStopsWhenCancelled(t *testing.T) {
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := p.RunRetry(ctx, 1, Retry{Attempts: 100},
		func(context.Context, int) error {
			if calls.Add(1) == 2 {
				cancel()
			}
			return fmt.Errorf("always fails")
		})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in the join", err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("attempts after cancellation = %d, want 2", n)
	}
}

func TestRetryBackoffCap(t *testing.T) {
	r := Retry{BaseDelay: time.Second, MaxDelay: 5 * time.Second}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 5 * time.Second, 5 * time.Second}
	for i, w := range want {
		if got := r.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (Retry{}).backoff(3); got != 0 {
		t.Errorf("zero-policy backoff = %v, want 0", got)
	}
}

// TestRetryBackoffUncappedNeverOverflows is the regression test for the
// MaxDelay == 0 overflow: ~63 doublings of a 1 s base used to wrap
// time.Duration negative, so the retry timer fired immediately and the
// "backoff" became a hot loop. Every attempt number, however absurd,
// must produce a positive, non-decreasing wait.
func TestRetryBackoffUncappedNeverOverflows(t *testing.T) {
	r := Retry{Attempts: 1 << 20, BaseDelay: time.Second}
	prev := time.Duration(0)
	for _, n := range []int{1, 2, 10, 32, 62, 63, 64, 65, 100, 1000, 1 << 20} {
		got := r.backoff(n)
		if got <= 0 {
			t.Fatalf("backoff(%d) = %v, want positive (overflowed)", n, got)
		}
		if got < prev {
			t.Fatalf("backoff(%d) = %v decreased from %v", n, got, prev)
		}
		prev = got
	}
	// A cap supplied by the caller still wins over the overflow clamp.
	capped := Retry{BaseDelay: time.Second, MaxDelay: time.Minute}
	if got := capped.backoff(200); got != time.Minute {
		t.Errorf("capped backoff(200) = %v, want %v", got, time.Minute)
	}
}

func TestRunEmptyAndDefaults(t *testing.T) {
	if err := New(2).Run(context.Background(), 0, nil); err != nil {
		t.Errorf("empty run: %v", err)
	}
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := New(7).Workers(); w != 7 {
		t.Errorf("workers = %d", w)
	}
	// A pre-cancelled context reports cancellation even for n = 0 work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := New(1).Run(ctx, 0, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled empty run err = %v", err)
	}
}
