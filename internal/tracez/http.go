package tracez

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
)

// Handler serves the recorder's retention views:
//
//	GET /debug/tracez                 HTML overview (recent + errored + slowest)
//	GET /debug/tracez?view=recent     one view (recent | errored | slow)
//	GET /debug/tracez?format=json     the full Snapshot as JSON
//
// The handler is registered at whatever path the caller mounts it on;
// query parameters, not the path, select the view.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(filterSnapshot(snap, req.URL.Query().Get("view")))
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeHTML(w, snap, req.URL.Query().Get("view"))
	})
}

// filterSnapshot narrows a snapshot to one view for ?view= JSON
// requests; an empty or unknown view returns everything.
func filterSnapshot(s Snapshot, view string) Snapshot {
	switch view {
	case "recent":
		return Snapshot{Stats: s.Stats, Recent: s.Recent}
	case "errored":
		return Snapshot{Stats: s.Stats, Errored: s.Errored}
	case "slow", "slowest":
		return Snapshot{Stats: s.Stats, Slowest: s.Slowest}
	}
	return s
}

func writeHTML(w http.ResponseWriter, snap Snapshot, view string) {
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>tracez</title><style>
body{font-family:monospace;margin:1.5em;background:#fafafa;color:#222}
h1{font-size:1.3em}h2{font-size:1.1em;margin-top:1.5em}
table{border-collapse:collapse;margin:.5em 0}
td,th{border:1px solid #bbb;padding:2px 8px;text-align:right;font-size:.85em}
th{background:#eee}td.l,th.l{text-align:left}
tr.anom td{background:#fde8e8}
.ev{color:#555;font-size:.8em}
</style></head><body><h1>/debug/tracez</h1>`)
	fmt.Fprintf(w, `<p>sample_rate=%g started=%d finished=%d anomalies=%d slow=%d</p>`,
		snap.Stats.SampleRate, snap.Stats.Started, snap.Stats.Finished,
		snap.Stats.Anomalies, snap.Stats.Slow)
	fmt.Fprint(w, `<p>views: <a href="?view=recent">recent</a> · <a href="?view=errored">errored</a> · <a href="?view=slow">slowest</a> · <a href="?format=json">json</a></p>`)

	if view == "" || view == "recent" {
		writeTable(w, "Recent", snap.Recent)
	}
	if view == "" || view == "errored" {
		writeTable(w, "Errored / always-kept anomalies", snap.Errored)
	}
	if view == "" || view == "slow" || view == "slowest" {
		stages := make([]string, 0, len(snap.Slowest))
		for s := range snap.Slowest {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			writeTable(w, "Slowest by "+s, snap.Slowest[s])
		}
	}
	fmt.Fprint(w, `</body></html>`)
}

func writeTable(w http.ResponseWriter, title string, traces []TraceJSON) {
	fmt.Fprintf(w, `<h2>%s (%d)</h2>`, html.EscapeString(title), len(traces))
	if len(traces) == 0 {
		fmt.Fprint(w, `<p class="ev">none</p>`)
		return
	}
	fmt.Fprint(w, `<table><tr><th class="l">id</th><th class="l">node</th><th class="l">outcome</th><th>admission ms</th><th>queue ms</th><th>service ms</th><th>e2e ms</th><th class="l">events</th></tr>`)
	for _, t := range traces {
		cls := ""
		if t.Anomaly {
			cls = ` class="anom"`
		}
		fmt.Fprintf(w, `<tr%s><td class="l">%s</td><td class="l">%s</td><td class="l">%s</td><td>%.3f</td><td>%.3f</td><td>%.3f</td><td>%.3f</td><td class="l ev">`,
			cls, html.EscapeString(t.ID), html.EscapeString(t.Node),
			html.EscapeString(t.Outcome), t.AdmissionMs, t.QueueMs, t.ServiceMs, t.E2EMs)
		for i, ev := range t.Events {
			if i > 0 {
				fmt.Fprint(w, " → ")
			}
			fmt.Fprintf(w, "%s@%.0fµs", html.EscapeString(ev.Kind), ev.OffsetUs)
			if ev.Note != "" {
				fmt.Fprintf(w, "(%s)", html.EscapeString(ev.Note))
			}
		}
		fmt.Fprint(w, `</td></tr>`)
	}
	fmt.Fprint(w, `</table>`)
}
