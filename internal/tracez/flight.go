package tracez

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trickledown/internal/telemetry"
)

var (
	mFlightEvents = telemetry.NewCounter("tracez_flight_events_total",
		"structured events recorded into the flight ring")
	mBundleDumps = telemetry.NewCounter("tracez_bundle_dumps_total",
		"diagnostics bundles written to disk")
	mBundleSuppressed = telemetry.NewCounter("tracez_bundle_suppressed_total",
		"bundle triggers suppressed by the dump rate limit")
)

// FlightEvent is one entry in the always-on flight ring: what happened,
// when, and optionally which trace it concerned.
type FlightEvent struct {
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
	Arg    int64     `json:"arg,omitempty"`
	Trace  string    `json:"trace,omitempty"`
}

// flightSlot is one ring slot with its own lock, so concurrent writers
// only contend when they land on the same slot — which at any sane ring
// size means the ring has wrapped ringSize events in one instant.
type flightSlot struct {
	mu sync.Mutex
	ev FlightEvent
}

// FlightRecorder is a process-lifetime ring of recent structured
// events: cheap enough to leave on always (one atomic add plus an
// uncontended slot lock per note), sized so the last few thousand
// decisions are reconstructable when something goes wrong. It is the
// black box the diagnostics bundle reads out.
type FlightRecorder struct {
	slots  []flightSlot
	cursor atomic.Uint64
}

// NewFlightRecorder returns a ring of n slots (default 1024 when n<=0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 1024
	}
	return &FlightRecorder{slots: make([]flightSlot, n)}
}

// defaultFlight is the process-wide flight ring.
var defaultFlight = NewFlightRecorder(0)

// Flight returns the process-wide flight recorder.
func Flight() *FlightRecorder { return defaultFlight }

// Note records an event.
func (f *FlightRecorder) Note(kind, detail string, arg int64) {
	f.note(FlightEvent{Kind: kind, Detail: detail, Arg: arg})
}

// NoteTrace records an event tied to a trace ID.
func (f *FlightRecorder) NoteTrace(kind, detail string, arg int64, id TraceID) {
	f.note(FlightEvent{Kind: kind, Detail: detail, Arg: arg, Trace: id.String()})
}

func (f *FlightRecorder) note(ev FlightEvent) {
	ev.Seq = f.cursor.Add(1)
	ev.At = time.Now()
	slot := &f.slots[(ev.Seq-1)%uint64(len(f.slots))]
	slot.mu.Lock()
	slot.ev = ev
	slot.mu.Unlock()
	mFlightEvents.Inc()
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	last := f.cursor.Load()
	n := uint64(len(f.slots))
	start := uint64(1)
	if last > n {
		start = last - n + 1
	}
	out := make([]FlightEvent, 0, last-start+1)
	for seq := start; seq <= last; seq++ {
		slot := &f.slots[(seq-1)%n]
		slot.mu.Lock()
		ev := slot.ev
		slot.mu.Unlock()
		// A slot overwritten by a newer event than the one we wanted (the
		// ring advanced mid-read) is skipped, not misordered.
		if ev.Seq == seq {
			out = append(out, ev)
		}
	}
	return out
}

// Bundler writes diagnostics bundles: a directory per trigger holding
// the flight ring, a tracez snapshot, the full telemetry exposition,
// and a goroutine dump. Triggers are rate-limited so a flapping
// degraded flag produces one bundle per MinInterval, not one per flap.
type Bundler struct {
	// Dir is the directory bundles are created under.
	Dir string
	// MinInterval is the minimum wall-clock spacing between bundles
	// (default 30s).
	MinInterval time.Duration

	rec    *Recorder
	flight *FlightRecorder
	last   atomic.Int64 // unix nanos of the last dump
	dumps  atomic.Uint64
}

// NewBundler wires a bundler to a recorder and flight ring (nil args
// fall back to the process-wide defaults).
func NewBundler(dir string, rec *Recorder, flight *FlightRecorder) *Bundler {
	if rec == nil {
		rec = Default()
	}
	if flight == nil {
		flight = Flight()
	}
	return &Bundler{Dir: dir, MinInterval: 30 * time.Second, rec: rec, flight: flight}
}

// Dumps returns how many bundles were written.
func (b *Bundler) Dumps() uint64 { return b.dumps.Load() }

// Trigger writes a bundle for the given reason, returning its
// directory. Within MinInterval of the previous dump it returns ""
// with no error (suppressed). Safe for concurrent use; concurrent
// triggers produce at most one bundle.
func (b *Bundler) Trigger(reason string) (string, error) {
	min := b.MinInterval
	if min <= 0 {
		min = 30 * time.Second
	}
	now := time.Now()
	last := b.last.Load()
	if last != 0 && now.Sub(time.Unix(0, last)) < min {
		mBundleSuppressed.Inc()
		return "", nil
	}
	if !b.last.CompareAndSwap(last, now.UnixNano()) {
		mBundleSuppressed.Inc()
		return "", nil
	}
	dir, err := DumpBundle(b.Dir, reason, b.rec, b.flight)
	if err == nil {
		b.dumps.Add(1)
	}
	return dir, err
}

// DumpBundle writes one diagnostics bundle under dir, unconditionally:
//
//	flight.json      the flight ring, oldest first
//	tracez.json      the recorder's retention views
//	metrics.prom     the full telemetry text exposition
//	goroutines.txt   stacks of every goroutine
//	meta.json        reason, time, pid
//
// It returns the created bundle directory.
func DumpBundle(dir, reason string, rec *Recorder, flight *FlightRecorder) (string, error) {
	if rec == nil {
		rec = Default()
	}
	if flight == nil {
		flight = Flight()
	}
	name := fmt.Sprintf("tddiag_%s_%s", time.Now().UTC().Format("20060102T150405.000"), sanitizeReason(reason))
	bundle := filepath.Join(dir, name)
	if err := os.MkdirAll(bundle, 0o755); err != nil {
		return "", fmt.Errorf("tracez: create bundle dir: %w", err)
	}
	if err := writeJSON(filepath.Join(bundle, "meta.json"), map[string]any{
		"reason": reason,
		"time":   time.Now().UTC().Format(time.RFC3339Nano),
		"pid":    os.Getpid(),
	}); err != nil {
		return "", err
	}
	if err := writeJSON(filepath.Join(bundle, "flight.json"), flight.Events()); err != nil {
		return "", err
	}
	if err := writeJSON(filepath.Join(bundle, "tracez.json"), rec.Snapshot()); err != nil {
		return "", err
	}
	mf, err := os.Create(filepath.Join(bundle, "metrics.prom"))
	if err != nil {
		return "", fmt.Errorf("tracez: bundle metrics: %w", err)
	}
	werr := telemetry.WriteText(mf)
	if cerr := mf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", fmt.Errorf("tracez: bundle metrics: %w", werr)
	}
	// Grow the stack buffer until the dump fits; 1 MiB covers hundreds
	// of goroutines and doubling converges fast past that.
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	if err := os.WriteFile(filepath.Join(bundle, "goroutines.txt"), buf, 0o644); err != nil {
		return "", fmt.Errorf("tracez: bundle goroutines: %w", err)
	}
	mBundleDumps.Inc()
	return bundle, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tracez: bundle %s: %w", filepath.Base(path), err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(v)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("tracez: bundle %s: %w", filepath.Base(path), werr)
	}
	return nil
}

// sanitizeReason keeps bundle directory names shell-friendly.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason) && len(out) < 40; i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
