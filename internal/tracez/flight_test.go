package tracez

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRingOrderAndWrap(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		f.Note("test", "ev", int64(i))
	}
	evs := f.Events()
	if len(evs) != 8 {
		t.Fatalf("events = %d, want ring bound 8", len(evs))
	}
	for i := range evs {
		if want := int64(12 + i); evs[i].Arg != want {
			t.Errorf("events[%d].Arg = %d, want %d (oldest-first after wrap)", i, evs[i].Arg, want)
		}
		if i > 0 && evs[i].Seq != evs[i-1].Seq+1 {
			t.Errorf("seq gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightConcurrentNotes(t *testing.T) {
	f := NewFlightRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.NoteTrace("race", "note", int64(g), NewTraceID())
			}
		}(g)
	}
	wg.Wait()
	evs := f.Events()
	if len(evs) == 0 || len(evs) > 128 {
		t.Fatalf("events = %d, want (0,128]", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("out of order: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestDumpBundleWritesAllParts(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(Config{SampleRate: 1})
	fl := NewFlightRecorder(16)
	fl.Note("shedding", "queue full", 42)
	tr := rec.StartAt(NewTraceID(), "bundle-node", "", time.Now())
	tr.Add(EvShed, 7)
	tr.Outcome = "shed:queue_full"
	rec.Finish(tr)

	bundle, err := DumpBundle(dir, "shedding start!", rec, fl)
	if err != nil {
		t.Fatalf("DumpBundle: %v", err)
	}
	if !strings.Contains(filepath.Base(bundle), "shedding_start_") {
		t.Errorf("bundle dir %q: reason not sanitized in", bundle)
	}
	for _, name := range []string{"meta.json", "flight.json", "tracez.json", "metrics.prom", "goroutines.txt"} {
		fi, err := os.Stat(filepath.Join(bundle, name))
		if err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("bundle %s is empty", name)
		}
	}

	// The tracez snapshot inside the bundle must carry the shed trace.
	raw, err := os.ReadFile(filepath.Join(bundle, "tracez.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("tracez.json: %v", err)
	}
	if len(snap.Errored) != 1 || snap.Errored[0].Node != "bundle-node" {
		t.Errorf("bundle tracez.json errored = %+v", snap.Errored)
	}
	// The goroutine dump includes this test's own goroutine.
	stacks, _ := os.ReadFile(filepath.Join(bundle, "goroutines.txt"))
	if !strings.Contains(string(stacks), "TestDumpBundleWritesAllParts") {
		t.Error("goroutines.txt does not contain the calling goroutine")
	}
}

func TestBundlerRateLimit(t *testing.T) {
	dir := t.TempDir()
	b := NewBundler(dir, NewRecorder(Config{}), NewFlightRecorder(8))
	b.MinInterval = time.Hour

	first, err := b.Trigger("degraded")
	if err != nil || first == "" {
		t.Fatalf("first trigger: dir=%q err=%v", first, err)
	}
	second, err := b.Trigger("degraded")
	if err != nil {
		t.Fatalf("second trigger: %v", err)
	}
	if second != "" {
		t.Errorf("second trigger within MinInterval wrote %q, want suppression", second)
	}
	if b.Dumps() != 1 {
		t.Errorf("dumps = %d, want 1", b.Dumps())
	}

	// A tiny interval re-arms the bundler.
	b.MinInterval = time.Nanosecond
	time.Sleep(time.Millisecond)
	third, err := b.Trigger("again")
	if err != nil || third == "" {
		t.Fatalf("third trigger after interval: dir=%q err=%v", third, err)
	}
}
