package tracez

import (
	"sort"
	"time"
)

// ring is a fixed-capacity overwrite buffer of completed traces. Push
// and snapshot run under the recorder's mutex; completion is off the
// ingest hot path, so a plain ring beats anything cleverer.
type ring struct {
	buf  []*Trace
	next int
	n    int
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]*Trace, capacity)}
}

func (r *ring) push(t *Trace) {
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// list returns the retained traces, newest first.
func (r *ring) list() []*Trace {
	out := make([]*Trace, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// topK retains the K slowest traces for one stage. K is single-digit,
// so a linear min-replace over a small slice is both the simplest and
// the fastest structure.
type topK struct {
	k       int
	traces  []*Trace
	weights []time.Duration
}

func newTopK(k int) *topK {
	return &topK{k: k}
}

// offer considers t (with stage duration d) for the table.
func (s *topK) offer(t *Trace, d time.Duration) {
	if d <= 0 {
		return
	}
	if len(s.traces) < s.k {
		s.traces = append(s.traces, t)
		s.weights = append(s.weights, d)
		return
	}
	minI := 0
	for i := 1; i < len(s.weights); i++ {
		if s.weights[i] < s.weights[minI] {
			minI = i
		}
	}
	if d > s.weights[minI] {
		s.traces[minI] = t
		s.weights[minI] = d
	}
}

// list returns the retained traces, slowest first.
func (s *topK) list() []*Trace {
	type pair struct {
		t *Trace
		d time.Duration
	}
	ps := make([]pair, len(s.traces))
	for i := range s.traces {
		ps[i] = pair{s.traces[i], s.weights[i]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].d > ps[b].d })
	out := make([]*Trace, len(ps))
	for i := range ps {
		out[i] = ps[i].t
	}
	return out
}

// EventJSON is one event in the wire-ready snapshot, with its time as
// an offset from the trace start (stable across machines and easier to
// read than absolute stamps).
type EventJSON struct {
	Kind     string  `json:"kind"`
	OffsetUs float64 `json:"offset_us"`
	Arg      int64   `json:"arg,omitempty"`
	Note     string  `json:"note,omitempty"`
}

// TraceJSON is one completed trace in the wire-ready snapshot.
type TraceJSON struct {
	ID      string    `json:"id"`
	Node    string    `json:"node,omitempty"`
	Client  string    `json:"client,omitempty"`
	Start   time.Time `json:"start"`
	Outcome string    `json:"outcome"`
	Anomaly bool      `json:"anomaly,omitempty"`
	// Per-stage durations in milliseconds; zero when the stage's
	// bracketing events were not recorded.
	AdmissionMs float64     `json:"admission_ms"`
	QueueMs     float64     `json:"queue_ms"`
	ServiceMs   float64     `json:"service_ms"`
	E2EMs       float64     `json:"e2e_ms"`
	Events      []EventJSON `json:"events,omitempty"`
	Dropped     int         `json:"events_dropped,omitempty"`
}

func traceJSON(t *Trace) TraceJSON {
	d := t.Durations()
	tj := TraceJSON{
		ID:          t.ID.String(),
		Node:        t.Node,
		Client:      t.Client,
		Start:       t.Start,
		Outcome:     t.Outcome,
		Anomaly:     t.Outcome != "ok",
		AdmissionMs: d[StageAdmission].Seconds() * 1e3,
		QueueMs:     d[StageQueue].Seconds() * 1e3,
		ServiceMs:   d[StageService].Seconds() * 1e3,
		E2EMs:       d[StageE2E].Seconds() * 1e3,
		Dropped:     t.dropped,
	}
	for _, ev := range t.Events() {
		tj.Events = append(tj.Events, EventJSON{
			Kind:     ev.Kind.String(),
			OffsetUs: ev.At.Sub(t.Start).Seconds() * 1e6,
			Arg:      ev.Arg,
			Note:     ev.Note,
		})
	}
	return tj
}

// Snapshot is the full /debug/tracez payload.
type Snapshot struct {
	Stats   Stats                  `json:"stats"`
	Recent  []TraceJSON            `json:"recent"`
	Errored []TraceJSON            `json:"errored"`
	Slowest map[string][]TraceJSON `json:"slowest"`
}

// Snapshot renders every retention view, newest/slowest first.
func (r *Recorder) Snapshot() Snapshot {
	r.mu.Lock()
	recent := r.recent.list()
	errored := r.errored.list()
	var slowest [NumStages][]*Trace
	for s := 0; s < NumStages; s++ {
		slowest[s] = r.slowest[s].list()
	}
	r.mu.Unlock()

	snap := Snapshot{
		Stats:   r.Stats(),
		Recent:  make([]TraceJSON, 0, len(recent)),
		Errored: make([]TraceJSON, 0, len(errored)),
		Slowest: make(map[string][]TraceJSON, NumStages),
	}
	for _, t := range recent {
		snap.Recent = append(snap.Recent, traceJSON(t))
	}
	for _, t := range errored {
		snap.Errored = append(snap.Errored, traceJSON(t))
	}
	for s := 0; s < NumStages; s++ {
		js := make([]TraceJSON, 0, len(slowest[s]))
		for _, t := range slowest[s] {
			js = append(js, traceJSON(t))
		}
		snap.Slowest[Stage(s).String()] = js
	}
	return snap
}
