package tracez

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero ID")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex chars", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", s, err)
	}
	if back != id {
		t.Fatalf("round trip: got %v, want %v", back, id)
	}
	if _, err := ParseTraceID("short"); err == nil {
		t.Error("ParseTraceID accepted a short string")
	}
	if _, err := ParseTraceID(strings.Repeat("z", 32)); err == nil {
		t.Error("ParseTraceID accepted non-hex input")
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate ID %s after %d mints", id, i)
		}
		seen[id] = true
	}
}

// TestSampledDeterministicAndProportional: the head-based decision is a
// pure function of (ID, rate) — so a producer and the server agree —
// and the sampled fraction tracks the configured rate.
func TestSampledDeterministicAndProportional(t *testing.T) {
	r := NewRecorder(Config{SampleRate: 0.1})
	const n = 20000
	sampled := 0
	for i := 0; i < n; i++ {
		id := NewTraceID()
		first := r.Sampled(id)
		if second := r.Sampled(id); second != first {
			t.Fatalf("Sampled(%s) flapped %v -> %v", id, first, second)
		}
		if first {
			sampled++
		}
	}
	got := float64(sampled) / n
	if math.Abs(got-0.1) > 0.02 {
		t.Errorf("sampled fraction %.4f at rate 0.1, want within ±0.02", got)
	}

	r.SetSampleRate(0)
	if r.Sampled(NewTraceID()) {
		t.Error("rate 0 sampled something")
	}
	r.SetSampleRate(1)
	if !r.Sampled(NewTraceID()) {
		t.Error("rate 1 skipped something")
	}
	r.SetSampleRate(math.NaN())
	if r.SampleRate() != 0 {
		t.Errorf("NaN rate stored as %g, want clamped to 0", r.SampleRate())
	}
}

// TestHotPathAllocFree gates the tentpole contract: deciding not to
// trace — mint, sample check, nil-trace event stamps — must not
// allocate, because it runs per ingest request with sampling disabled.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRecorder(Config{SampleRate: 0})
	allocs := testing.AllocsPerRun(1000, func() {
		ctx := r.Mint()
		tr := r.Start(ctx, "node", "client", time.Time{})
		tr.Add(EvAdmitted, 1)
		tr.AddNote(EvEnqueued, 2, "x")
		r.Finish(tr)
	})
	if allocs != 0 {
		t.Errorf("unsampled trace path allocates %.1f/op, want 0", allocs)
	}
}

func TestTraceEventsAndDurations(t *testing.T) {
	r := NewRecorder(Config{SampleRate: 1})
	start := time.Now()
	tr := r.Start(Context{ID: NewTraceID(), Sampled: true}, "n1", "c1", start)
	if tr == nil {
		t.Fatal("Start returned nil for a sampled context")
	}
	tr.AddAt(EvAdmitted, start.Add(5*time.Microsecond), 64, "")
	tr.AddAt(EvEnqueued, start.Add(10*time.Microsecond), 3, "")
	tr.AddAt(EvScheduled, start.Add(110*time.Microsecond), 1, "")
	tr.AddAt(EvDeparted, start.Add(310*time.Microsecond), 64, "")
	tr.End = start.Add(310 * time.Microsecond)
	r.Finish(tr)

	d := tr.Durations()
	if d[StageAdmission] != 10*time.Microsecond {
		t.Errorf("admission = %v, want 10µs", d[StageAdmission])
	}
	if d[StageQueue] != 100*time.Microsecond {
		t.Errorf("queue = %v, want 100µs", d[StageQueue])
	}
	if d[StageService] != 200*time.Microsecond {
		t.Errorf("service = %v, want 200µs", d[StageService])
	}
	if d[StageE2E] != 310*time.Microsecond {
		t.Errorf("e2e = %v, want 310µs", d[StageE2E])
	}
	if tr.Outcome != "ok" {
		t.Errorf("outcome %q, want ok", tr.Outcome)
	}
}

func TestEventCapacityBounded(t *testing.T) {
	r := NewRecorder(Config{})
	tr := r.StartAt(NewTraceID(), "n", "", time.Now())
	for i := 0; i < MaxEvents+5; i++ {
		tr.Add(EvNote, int64(i))
	}
	if len(tr.Events()) != MaxEvents {
		t.Errorf("events = %d, want capped at %d", len(tr.Events()), MaxEvents)
	}
	if tr.Dropped() != 5 {
		t.Errorf("dropped = %d, want 5", tr.Dropped())
	}
}

// TestRingsBoundedAndOrdered: retention never exceeds RingSize and the
// recent view is newest-first.
func TestRingsBoundedAndOrdered(t *testing.T) {
	r := NewRecorder(Config{SampleRate: 1, RingSize: 4})
	for i := 0; i < 10; i++ {
		tr := r.StartAt(NewTraceID(), "n", "", time.Now())
		tr.Add(EvNote, int64(i))
		r.Finish(tr)
	}
	snap := r.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("recent = %d traces, want ring bound 4", len(snap.Recent))
	}
	for i := 0; i < len(snap.Recent)-1; i++ {
		a, b := snap.Recent[i].Events[0].Arg, snap.Recent[i+1].Events[0].Arg
		if a <= b {
			t.Errorf("recent not newest-first: %d before %d", a, b)
		}
	}
	if snap.Recent[0].Events[0].Arg != 9 {
		t.Errorf("newest trace arg = %d, want 9", snap.Recent[0].Events[0].Arg)
	}
}

// TestAnomalyAlwaysKept: with sampling off, anomalies still land in the
// errored ring — the always-keep rule.
func TestAnomalyAlwaysKept(t *testing.T) {
	r := NewRecorder(Config{SampleRate: 0})
	id := NewTraceID()
	r.Anomaly(id, "node-x", "client-y", time.Now(), "shed:queue_full", EvShed, 256)

	snap := r.Snapshot()
	if len(snap.Errored) != 1 {
		t.Fatalf("errored = %d traces, want 1", len(snap.Errored))
	}
	got := snap.Errored[0]
	if got.ID != id.String() || got.Outcome != "shed:queue_full" || !got.Anomaly {
		t.Errorf("anomaly trace = %+v", got)
	}
	if st := r.Stats(); st.Anomalies != 1 {
		t.Errorf("anomalies = %d, want 1", st.Anomalies)
	}
}

// TestSlowPromotion: an ok trace over the slow threshold is re-labelled
// "slow" and kept in the errored ring.
func TestSlowPromotion(t *testing.T) {
	r := NewRecorder(Config{SampleRate: 1, SlowThreshold: time.Millisecond})
	start := time.Now().Add(-10 * time.Millisecond)
	tr := r.StartAt(NewTraceID(), "n", "", start)
	r.Finish(tr)

	fast := r.StartAt(NewTraceID(), "n", "", time.Now())
	fast.End = fast.Start.Add(10 * time.Microsecond)
	r.Finish(fast)

	snap := r.Snapshot()
	if len(snap.Errored) != 1 || snap.Errored[0].Outcome != "slow" {
		t.Fatalf("errored = %+v, want exactly the slow trace", snap.Errored)
	}
	if st := r.Stats(); st.Slow != 1 {
		t.Errorf("slow = %d, want 1", st.Slow)
	}
}

// TestSlowestPerStage: the per-stage top-K really holds the slowest
// traces for that stage, slowest first.
func TestSlowestPerStage(t *testing.T) {
	r := NewRecorder(Config{SampleRate: 1, TopK: 3})
	start := time.Now()
	for i := 1; i <= 6; i++ {
		tr := r.StartAt(NewTraceID(), "n", "", start)
		tr.AddAt(EvEnqueued, start.Add(time.Duration(i)*time.Millisecond), 0, "")
		tr.AddAt(EvScheduled, start.Add(time.Duration(i+1)*time.Millisecond), 0, "")
		tr.AddAt(EvDeparted, start.Add(time.Duration(2*i+1)*time.Millisecond), 0, "")
		tr.End = start.Add(time.Duration(2*i+1) * time.Millisecond)
		r.Finish(tr)
	}
	snap := r.Snapshot()
	adm := snap.Slowest["admission"]
	if len(adm) != 3 {
		t.Fatalf("slowest admission = %d, want top-3", len(adm))
	}
	// Admission duration is i ms; slowest three are 6,5,4.
	for want, j := 6, 0; j < 3; want, j = want-1, j+1 {
		if math.Abs(adm[j].AdmissionMs-float64(want)) > 0.001 {
			t.Errorf("slowest[%d].AdmissionMs = %.3f, want %d", j, adm[j].AdmissionMs, want)
		}
	}
	if len(snap.Slowest["e2e"]) != 3 {
		t.Errorf("slowest e2e = %d, want 3", len(snap.Slowest["e2e"]))
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(Config{SampleRate: 1, RingSize: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := r.StartAt(NewTraceID(), "n", "", time.Now())
				tr.Add(EvAdmitted, int64(i))
				tr.Add(EvDeparted, int64(i))
				r.Finish(tr)
			}
		}()
	}
	wg.Wait()
	st := r.Stats()
	if st.Finished != 1600 {
		t.Errorf("finished = %d, want 1600", st.Finished)
	}
	if got := len(r.Snapshot().Recent); got != 64 {
		t.Errorf("recent = %d, want ring bound 64", got)
	}
}

func TestHandlerJSONAndHTML(t *testing.T) {
	r := NewRecorder(Config{SampleRate: 1})
	tr := r.StartAt(NewTraceID(), "node-7", "client-a", time.Now())
	tr.Add(EvAdmitted, 10)
	r.Finish(tr)
	r.Anomaly(NewTraceID(), "node-8", "", time.Now(), "rate_limited", EvShed, 99)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	body := fetch(t, srv.URL+"?format=json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("JSON view did not parse: %v\n%s", err, body)
	}
	if len(snap.Recent) != 2 || len(snap.Errored) != 1 {
		t.Errorf("recent=%d errored=%d, want 2/1", len(snap.Recent), len(snap.Errored))
	}

	body = fetch(t, srv.URL+"?view=errored&format=json")
	var errView Snapshot
	if err := json.Unmarshal([]byte(body), &errView); err != nil {
		t.Fatalf("errored JSON view: %v", err)
	}
	if len(errView.Recent) != 0 || len(errView.Errored) != 1 {
		t.Errorf("view=errored returned recent=%d errored=%d", len(errView.Recent), len(errView.Errored))
	}

	body = fetch(t, srv.URL)
	for _, want := range []string{"<html>", "node-7", "rate_limited", "ADMITTED"} {
		if !strings.Contains(body, want) {
			t.Errorf("HTML view missing %q", want)
		}
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(b)
}
