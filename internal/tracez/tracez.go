// Package tracez is request-scoped tracing for the live pipeline: a
// 128-bit trace context minted at the producer (or at admission),
// carried through every stage of a request's journey as timestamped
// events, and retained in fixed-size ring buffers served by a
// /debug/tracez endpoint. Where internal/telemetry answers "what are
// the aggregate latency quantiles", tracez answers "what happened to
// *that* batch" — the one that shed, quarantined, or landed in the p99
// tail.
//
// Retention policy is head-based sampling (a configurable rate decided
// deterministically from the trace ID, so producer and server agree
// without coordination) plus always-keep-on-anomaly: a shed,
// rate-limited, quarantined or slow-outlier request is recorded even
// when the sampler said no, because the interesting requests are
// precisely the ones a uniform sample misses. Completed traces land in
// three bounded views — recent, errored, and slowest-per-stage — so
// memory is fixed no matter how long the service runs.
//
// The hot-path contract mirrors the rest of the repo: deciding *not*
// to trace costs no allocation and a handful of arithmetic ops.
// Allocation happens only on the sampled or anomalous path, which is
// off the per-sample ingest spine by construction.
package tracez

import (
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"trickledown/internal/telemetry"
)

// Package-wide telemetry: one picture of tracing activity per process,
// regardless of how many recorders exist.
var (
	mTracesStarted = telemetry.NewCounter("tracez_traces_started_total",
		"traces opened (sampled head-based or reconstructed on anomaly)")
	mTracesFinished = telemetry.NewCounter("tracez_traces_finished_total",
		"traces completed and filed into the retention rings")
	mTracesAnomaly = telemetry.NewCounter("tracez_traces_anomaly_total",
		"completed traces kept by the always-keep-on-anomaly rule")
	mEventsDropped = telemetry.NewCounter("tracez_events_dropped_total",
		"events discarded because a trace hit its fixed event capacity")
)

// TraceID is a 128-bit request identity, rendered as 32 hex digits.
type TraceID [16]byte

// String renders the ID as lowercase hex.
func (id TraceID) String() string {
	var buf [32]byte
	hex.Encode(buf[:], id[:])
	return string(buf[:])
}

// IsZero reports whether the ID is the all-zero (absent) identity.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("tracez: trace ID %q is %d chars, want 32", s, len(s))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("tracez: bad trace ID %q: %w", s, err)
	}
	return id, nil
}

// idState seeds the allocation-free ID generator. Trace IDs need
// uniqueness, not cryptographic strength; a splitmix64 walk from a
// per-process random-ish origin gives both goroutine-safety (one atomic
// add) and zero allocation.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 ^ 0x9e3779b97f4a7c15)
}

// splitmix64 is the same finalizer internal/stats uses for its
// deterministic bootstrap stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewTraceID mints a fresh ID. Allocation-free.
func NewTraceID() TraceID {
	s := idState.Add(2)
	hi, lo := splitmix64(s), splitmix64(s+1)
	var id TraceID
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (8 * i))
		id[8+i] = byte(lo >> (8 * i))
	}
	return id
}

// Context is the trace identity a request carries across the wire and
// through the pipeline: who it is, and whether the head-based sampler
// elected to record its events.
type Context struct {
	ID      TraceID
	Sampled bool
}

// EventKind names a stage in the request journey.
type EventKind uint8

const (
	// EvAdmitted: past decode and admission control; arg = batch samples.
	EvAdmitted EventKind = iota
	// EvEnqueued: accepted into the bounded queue; arg = queue depth at
	// enqueue (the overload signal at the moment of admission).
	EvEnqueued
	// EvScheduled: an estimation worker picked the batch up; arg = worker id.
	EvScheduled
	// EvEstimated: the subsystem estimators ran; arg = quarantined
	// (non-finite) sample count.
	EvEstimated
	// EvDeparted: results folded into node state; arg = samples estimated.
	EvDeparted
	// EvShed: rejected at admission; arg = samples, note = reason.
	EvShed
	// EvNodeStep: a cluster node advanced; note = node name.
	EvNodeStep
	// EvQuarantine: a node or sample set was quarantined; note = cause.
	EvQuarantine
	// EvNote: free-form annotation.
	EvNote
)

var eventKindNames = [...]string{
	EvAdmitted:   "ADMITTED",
	EvEnqueued:   "ENQUEUED",
	EvScheduled:  "SCHEDULED",
	EvEstimated:  "ESTIMATED",
	EvDeparted:   "DEPARTED",
	EvShed:       "SHED",
	EvNodeStep:   "NODE_STEP",
	EvQuarantine: "QUARANTINE",
	EvNote:       "NOTE",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EVENT(%d)", int(k))
}

// MaxEvents is the fixed per-trace event capacity. Twelve covers the
// serve journey (admit, enqueue, schedule, estimate, depart) plus
// retries and annotations; past it events are counted dropped, never
// grown — a trace is a bounded record, not a log.
const MaxEvents = 12

// Event is one timestamped stage marker.
type Event struct {
	Kind EventKind
	At   time.Time
	Arg  int64
	Note string
}

// Trace is one request's recorded journey. Events live in a fixed
// inline array so recording is a stamp, not an append-and-grow.
type Trace struct {
	ID     TraceID
	Node   string
	Client string
	Start  time.Time
	// End and Outcome are set at Finish. Outcome "ok" is the happy path;
	// anything else ("shed:queue_full", "rate_limited", "quarantine",
	// "slow", ...) marks the trace anomalous and always-kept.
	End     time.Time
	Outcome string

	events  [MaxEvents]Event
	n       int
	dropped int
}

// Add stamps an event at time.Now.
func (t *Trace) Add(kind EventKind, arg int64) { t.AddAt(kind, time.Now(), arg, "") }

// AddNote stamps an annotated event at time.Now.
func (t *Trace) AddNote(kind EventKind, arg int64, note string) {
	t.AddAt(kind, time.Now(), arg, note)
}

// AddAt stamps an event at an explicit time — the reconstruction path,
// where an anomalous request's timestamps were carried on the batch
// itself and the trace is assembled after the fact.
func (t *Trace) AddAt(kind EventKind, at time.Time, arg int64, note string) {
	if t == nil {
		return
	}
	if t.n >= MaxEvents {
		t.dropped++
		mEventsDropped.Inc()
		return
	}
	t.events[t.n] = Event{Kind: kind, At: at, Arg: arg, Note: note}
	t.n++
}

// Events returns the recorded events, oldest first. The slice aliases
// the trace's storage; callers must not retain it past Finish.
func (t *Trace) Events() []Event { return t.events[:t.n] }

// Dropped returns how many events were discarded at capacity.
func (t *Trace) Dropped() int { return t.dropped }

// eventAt returns the time of the first event of the given kind.
func (t *Trace) eventAt(kind EventKind) (time.Time, bool) {
	for i := 0; i < t.n; i++ {
		if t.events[i].Kind == kind {
			return t.events[i].At, true
		}
	}
	return time.Time{}, false
}

// Stage indexes the derived per-stage durations.
type Stage int

const (
	// StageAdmission is ARRIVED→QUEUED (decode + admission control).
	StageAdmission Stage = iota
	// StageQueue is QUEUED→SCHEDULED (wait for an estimation worker).
	StageQueue
	// StageService is SCHEDULED→DEPARTED (batched estimation).
	StageService
	// StageE2E is ARRIVED→DEPARTED end to end.
	StageE2E
	numStages
)

// NumStages is the number of derived stage durations.
const NumStages = int(numStages)

var stageNames = [NumStages]string{"admission", "queue", "service", "e2e"}

func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("STAGE(%d)", int(s))
}

// Durations derives the per-stage durations from the recorded events.
// A stage whose bracketing events are absent reports zero.
func (t *Trace) Durations() [NumStages]time.Duration {
	var d [NumStages]time.Duration
	queued, hasQ := t.eventAt(EvEnqueued)
	sched, hasS := t.eventAt(EvScheduled)
	dep, hasD := t.eventAt(EvDeparted)
	if hasQ {
		d[StageAdmission] = queued.Sub(t.Start)
	}
	if hasQ && hasS {
		d[StageQueue] = sched.Sub(queued)
	}
	if hasS && hasD {
		d[StageService] = dep.Sub(sched)
	}
	if !t.End.IsZero() {
		d[StageE2E] = t.End.Sub(t.Start)
	}
	return d
}

// Config configures a Recorder. The zero value records nothing but
// anomalies.
type Config struct {
	// SampleRate is the head-based sampling probability in [0,1],
	// decided deterministically from the trace ID.
	SampleRate float64
	// RingSize bounds each retention view in traces (default 256).
	RingSize int
	// TopK is how many slowest traces are kept per stage (default 8).
	TopK int
	// SlowThreshold promotes a trace whose e2e exceeds it to always-kept
	// anomaly status ("slow"); zero disables the promotion.
	SlowThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.TopK <= 0 {
		c.TopK = 8
	}
	if c.SampleRate < 0 {
		c.SampleRate = 0
	}
	if c.SampleRate > 1 {
		c.SampleRate = 1
	}
	return c
}

// Recorder owns the sampling decision and the bounded retention rings.
// All methods are safe for concurrent use.
type Recorder struct {
	rateBits atomic.Uint64 // float64 bits of the live sample rate
	cfg      Config

	mu      sync.Mutex
	recent  *ring
	errored *ring
	slowest [NumStages]*topK

	started  atomic.Uint64
	finished atomic.Uint64
	anomaly  atomic.Uint64
	slowSeen atomic.Uint64
}

// NewRecorder returns a recorder with bounded retention per cfg.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:     cfg,
		recent:  newRing(cfg.RingSize),
		errored: newRing(cfg.RingSize),
	}
	for i := range r.slowest {
		r.slowest[i] = newTopK(cfg.TopK)
	}
	r.rateBits.Store(math.Float64bits(cfg.SampleRate))
	return r
}

// defaultRecorder is the process-wide recorder used by the batch
// pipeline (cluster runs, experiment cells); the live service creates
// its own so its ring bounds are per-server configuration.
var defaultRecorder = NewRecorder(Config{})

// Default returns the process-wide recorder.
func Default() *Recorder { return defaultRecorder }

// SampleRate returns the live head-sampling rate.
func (r *Recorder) SampleRate() float64 { return math.Float64frombits(r.rateBits.Load()) }

// SetSampleRate updates the head-sampling rate at runtime (clamped to
// [0,1]).
func (r *Recorder) SetSampleRate(rate float64) {
	if rate < 0 || math.IsNaN(rate) {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	r.rateBits.Store(math.Float64bits(rate))
}

// Sampled is the deterministic head-based decision for an ID: the low
// 64 ID bits, read as a uniform draw, land under rate. Producer and
// server reach the same verdict for the same ID and rate without any
// coordination. Allocation-free.
func (r *Recorder) Sampled(id TraceID) bool {
	rate := r.SampleRate()
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	var lo uint64
	for i := 0; i < 8; i++ {
		lo |= uint64(id[8+i]) << (8 * i)
	}
	// Mix before comparing: sequential splitmix outputs are already
	// uniform, but wire-supplied IDs may not be.
	return float64(splitmix64(lo))/float64(math.MaxUint64) < rate
}

// Mint creates a fresh context: new ID plus this recorder's sampling
// verdict. Allocation-free — the unsampled hot path pays two atomic
// ops and a hash.
func (r *Recorder) Mint() Context {
	id := NewTraceID()
	return Context{ID: id, Sampled: r.Sampled(id)}
}

// Start opens a trace for a sampled context, or returns nil (recording
// on a nil *Trace is a no-op, so call sites stay branchless).
func (r *Recorder) Start(ctx Context, node, client string, start time.Time) *Trace {
	if !ctx.Sampled {
		return nil
	}
	return r.StartAt(ctx.ID, node, client, start)
}

// StartAt opens a trace unconditionally — the reconstruction path for
// anomalies on unsampled requests, and the always-on path for
// low-volume callers (cluster runs, experiment cells).
func (r *Recorder) StartAt(id TraceID, node, client string, start time.Time) *Trace {
	r.started.Add(1)
	mTracesStarted.Inc()
	return &Trace{ID: id, Node: node, Client: client, Start: start}
}

// Finish completes a trace and files it into the retention views. An
// empty outcome means "ok"; a non-"ok" outcome, or an e2e over the slow
// threshold, marks the trace anomalous (always kept in the errored
// ring). Nil traces are ignored.
func (r *Recorder) Finish(t *Trace) {
	if t == nil {
		return
	}
	if t.End.IsZero() {
		t.End = time.Now()
	}
	if t.Outcome == "" {
		t.Outcome = "ok"
	}
	if slow := r.cfg.SlowThreshold; slow > 0 && t.Outcome == "ok" && t.End.Sub(t.Start) > slow {
		t.Outcome = "slow"
		r.slowSeen.Add(1)
	}
	anomalous := t.Outcome != "ok"
	r.finished.Add(1)
	mTracesFinished.Inc()
	if anomalous {
		r.anomaly.Add(1)
		mTracesAnomaly.Inc()
	}
	d := t.Durations()
	r.mu.Lock()
	r.recent.push(t)
	if anomalous {
		r.errored.push(t)
	}
	for s := 0; s < NumStages; s++ {
		r.slowest[s].offer(t, d[s])
	}
	r.mu.Unlock()
}

// Anomaly records a one-shot anomaly trace: a request rejected at
// admission has exactly one interesting event, so the whole trace is
// assembled and filed in one call. Always kept regardless of sampling.
func (r *Recorder) Anomaly(id TraceID, node, client string, start time.Time, outcome string, kind EventKind, arg int64) {
	t := r.StartAt(id, node, client, start)
	t.AddNote(kind, arg, outcome)
	t.Outcome = outcome
	r.Finish(t)
}

// Stats is the recorder's own bookkeeping.
type Stats struct {
	SampleRate float64 `json:"sample_rate"`
	Started    uint64  `json:"started"`
	Finished   uint64  `json:"finished"`
	Anomalies  uint64  `json:"anomalies"`
	Slow       uint64  `json:"slow"`
}

// Stats snapshots the recorder counters.
func (r *Recorder) Stats() Stats {
	return Stats{
		SampleRate: r.SampleRate(),
		Started:    r.started.Load(),
		Finished:   r.finished.Load(),
		Anomalies:  r.anomaly.Load(),
		Slow:       r.slowSeen.Load(),
	}
}
