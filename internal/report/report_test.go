package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"trickledown/internal/experiments"
)

func TestGenerateSmallScale(t *testing.T) {
	opt := Options{Scale: 0.12, Seed: 100, TrainSeed: 10}
	g := NewGenerator(opt)
	var sections []string
	g.Progress = func(s string) { sections = append(sections, s) }
	var buf bytes.Buffer
	if err := g.Generate(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Experiments: paper vs. this reproduction",
		"Table 1: Subsystem Average Power",
		"Table 2: Subsystem Power Standard Deviation",
		"Table 3: Integer Average Model Error",
		"Table 4: Floating-Point Average Model Error",
		"Figures 2-7",
		"Figure 4: prefetch vs. non-prefetch",
		"Fitted model equations",
		"read/write-mix memory model",
		"Shape checklist",
		"Known divergences",
		"| idle | ours |",
		"| diskload | ours |",
		"cpu (Eq.1)",
		"mem-bus (Eq.3)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(sections) < 10 {
		t.Errorf("progress reported only %d sections", len(sections))
	}
	// Every paper row carries a paired paper line.
	if strings.Count(out, "| paper |") < 24 { // 12 workloads x 2 characterization tables
		t.Errorf("too few paper rows: %d", strings.Count(out, "| paper |"))
	}
}

func TestZeroScaleDefaults(t *testing.T) {
	g := NewGenerator(Options{})
	if g.opt.Scale != 1 {
		t.Errorf("Scale defaulted to %v", g.opt.Scale)
	}
	if DefaultOptions().Scale != 1 {
		t.Error("DefaultOptions scale != 1")
	}
}

func TestMarkdownTable(t *testing.T) {
	tbl := &experiments.Table{
		Title:   "Demo",
		Columns: []string{"A", "B"},
		Rows: []experiments.TableRow{
			{Workload: "x", Ours: []float64{1, 2}, Paper: []float64{1.5, 2.5}},
			{Workload: "y", Ours: []float64{3, 4}},
			{Workload: "z", Ours: []float64{math.NaN(), math.NaN()}},
		},
	}
	var b strings.Builder
	MarkdownTable(&b, tbl, "widgets")
	out := b.String()
	if strings.Contains(out, "NaN") {
		t.Errorf("failed cells must render n/a, not NaN:\n%s", out)
	}
	for _, want := range []string{
		"## Demo", "| workload | series | A | B |", "| x | ours | 1.00 | 2.00 |",
		"|  | paper | 1.50 | 2.50 |", "| y | ours | 3.00 | 4.00 |",
		"| z | ours | n/a | n/a |", "Values in widgets.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// The y row has no paper values and therefore no paper line after it.
	if strings.Count(out, "| paper |") != 1 {
		t.Errorf("paper rows = %d, want 1", strings.Count(out, "| paper |"))
	}
}
