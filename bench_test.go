package trickledown_test

import (
	"fmt"
	"sync"
	"testing"

	"trickledown/internal/align"

	"trickledown/internal/cluster"
	"trickledown/internal/core"
	"trickledown/internal/disk"
	"trickledown/internal/experiments"
	"trickledown/internal/machine"
	"trickledown/internal/power"
	"trickledown/internal/workload"
)

// benchScale keeps each regeneration to a few seconds while preserving
// every experiment's structure; run cmd/tdtables and cmd/tdfigures for
// full paper-scale traces.
const benchScale = 0.2

var (
	runnerOnce sync.Once
	benchR     *experiments.Runner
)

// runner returns a process-wide experiment runner so benchmarks after
// the first reuse cached simulation traces, the way repeated analyses of
// recorded logs would.
func runner() *experiments.Runner {
	runnerOnce.Do(func() {
		benchR = experiments.NewRunner(experiments.Options{
			Seed: 100, TrainSeed: 10, Scale: benchScale,
		})
	})
	return benchR
}

// reportErrs attaches per-subsystem average errors to the benchmark
// output so `go test -bench` doubles as a results report.
func reportErrs(b *testing.B, t *experiments.Table, row string) {
	r := t.Row(row)
	if r == nil {
		b.Fatalf("row %q missing", row)
	}
	for j, s := range power.Subsystems() {
		b.ReportMetric(r.Ours[j], s.String()+"_err%")
	}
}

// BenchmarkTable1 regenerates the subsystem average power table.
func BenchmarkTable1(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		t, err := r.Table1()
		if err != nil {
			b.Fatal(err)
		}
		gcc := t.Row("gcc")
		if gcc == nil {
			b.Fatal("gcc row missing")
		}
		b.ReportMetric(gcc.Ours[0], "gcc_cpu_W")
		b.ReportMetric(gcc.Ours[5], "gcc_total_W")
	}
}

// BenchmarkTable2 regenerates the subsystem power standard deviations.
func BenchmarkTable2(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		t, err := r.Table2()
		if err != nil {
			b.Fatal(err)
		}
		jbb := t.Row("specjbb")
		if jbb == nil {
			b.Fatal("specjbb row missing")
		}
		b.ReportMetric(jbb.Ours[0], "jbb_cpu_sd_W")
	}
}

// BenchmarkTable3 regenerates the integer-workload model-error table.
func BenchmarkTable3(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		t, err := r.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportErrs(b, t, "average")
		}
	}
}

// BenchmarkTable4 regenerates the floating-point model-error table.
func BenchmarkTable4(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		t, err := r.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportErrs(b, t, "average")
		}
	}
}

// benchFigure runs one trace figure and reports its average error.
func benchFigure(b *testing.B, get func() (*experiments.Figure, error)) {
	for i := 0; i < b.N; i++ {
		f, err := get()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.AvgErr, "avg_err%")
		b.ReportMetric(f.PaperErr, "paper_err%")
	}
}

// BenchmarkFigure2 regenerates the Eq. 1 CPU trace over staggered gcc.
func BenchmarkFigure2(b *testing.B) { benchFigure(b, runner().Figure2) }

// BenchmarkFigure3 regenerates the Eq. 2 memory trace over mesa.
func BenchmarkFigure3(b *testing.B) { benchFigure(b, runner().Figure3) }

// BenchmarkFigure4 regenerates the prefetch/non-prefetch mcf sweep.
func BenchmarkFigure4(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		tr, err := r.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		pf := tr.Series("Prefetch").Values
		all := tr.Series("All").Values
		b.ReportMetric(pf[len(pf)-1]/(all[len(all)-1]+1e-9), "tail_prefetch_share")
	}
}

// BenchmarkFigure5 regenerates the Eq. 3 memory trace over long mcf.
func BenchmarkFigure5(b *testing.B) { benchFigure(b, runner().Figure5) }

// BenchmarkFigure6 regenerates the Eq. 4 disk trace over DiskLoad.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, runner().Figure6) }

// BenchmarkFigure7 regenerates the Eq. 5 I/O trace over DiskLoad.
func BenchmarkFigure7(b *testing.B) { benchFigure(b, runner().Figure7) }

// ablate trains one alternative model spec on a training workload and
// reports its error next to the production model's on a target dataset.
func ablate(b *testing.B, spec core.ModelSpec, trainWL string, trainSec float64, evalWL string) {
	b.Helper()
	r := runner()
	est, err := r.Estimator()
	if err != nil {
		b.Fatal(err)
	}
	train, err := machine.RunWorkload(trainWL, trainSec*benchScale+30, 10)
	if err != nil {
		b.Fatal(err)
	}
	alt, err := core.Train(spec, train)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := machine.RunWorkload(evalWL, 300*benchScale+60, 100)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		altErr, err := alt.Validate(eval)
		if err != nil {
			b.Fatal(err)
		}
		prodErr, err := est.Model(spec.Sub).Validate(eval)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(altErr, "rejected_err%")
		b.ReportMetric(prodErr, "production_err%")
	}
}

// BenchmarkAblationMemL3OnMcf quantifies Section 4.2.2: the Eq. 2
// L3-miss memory model (trained on mesa) degrades on mcf's high
// utilization while the Eq. 3 bus model holds.
func BenchmarkAblationMemL3OnMcf(b *testing.B) {
	r := runner()
	est, err := r.Estimator()
	if err != nil {
		b.Fatal(err)
	}
	l3, err := r.MemL3Model()
	if err != nil {
		b.Fatal(err)
	}
	eval, err := machine.RunWorkload("mcf", 390*benchScale+60, 100)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		l3Err, err := l3.Validate(eval)
		if err != nil {
			b.Fatal(err)
		}
		busErr, err := est.Model(power.SubMemory).Validate(eval)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(l3Err, "l3_model_err%")
		b.ReportMetric(busErr, "bus_model_err%")
	}
}

// BenchmarkAblationDiskDMAOnly quantifies Section 4.2.3: a DMA-only disk
// model misses the fine-grain variation interrupts carry.
func BenchmarkAblationDiskDMAOnly(b *testing.B) {
	ablate(b, core.DiskDMASpec(), "diskload", 300, "diskload")
}

// BenchmarkAblationDiskUncacheable is the paper's other rejected disk
// input.
func BenchmarkAblationDiskUncacheable(b *testing.B) {
	ablate(b, core.DiskUncacheableSpec(), "diskload", 300, "diskload")
}

// BenchmarkAblationIODMAOnly quantifies Section 4.2.4: DMA counts are a
// worse I/O-power input than interrupts because write combining breaks
// the transaction-to-switching proportionality.
func BenchmarkAblationIODMAOnly(b *testing.B) {
	ablate(b, core.IODMASpec(), "diskload", 300, "dbt-2")
}

// BenchmarkAblationIOUncacheable is the paper's other rejected I/O input.
func BenchmarkAblationIOUncacheable(b *testing.B) {
	ablate(b, core.IOUncacheableSpec(), "diskload", 300, "dbt-2")
}

// BenchmarkSimulationSecond measures the substrate's cost of simulating
// one second (1000 slices) of the loaded 4-way server.
func BenchmarkSimulationSecond(b *testing.B) {
	spec, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := machine.New(machine.DefaultConfig(), spec)
	if err != nil {
		b.Fatal(err)
	}
	srv.Run(240) // reach the all-instances regime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Run(1)
	}
}

// BenchmarkCluster8Nodes measures parallel cluster stepping: an 8-node
// rack advanced 2 simulated seconds per iteration at several worker
// counts. Each node is an independent seeded simulation, so on a
// multi-core host throughput scales near-linearly until workers reach
// the core count (expect ≥2x at 4 workers); results are bit-for-bit
// identical at every worker count.
func BenchmarkCluster8Nodes(b *testing.B) {
	r := runner()
	est, err := r.Estimator()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c, err := cluster.New(est)
			if err != nil {
				b.Fatal(err)
			}
			c.SetWorkers(workers)
			for i := 0; i < 8; i++ {
				if _, err := c.AddHomogeneous(fmt.Sprintf("n%d", i), "gcc", uint64(200+i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Run(2); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_, total, err := c.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(total, "rack_W")
		})
	}
}

// BenchmarkEstimate measures the per-sample cost of the fitted models —
// the paper's "low computational cost" requirement for runtime use.
func BenchmarkEstimate(b *testing.B) {
	r := runner()
	est, err := r.Estimator()
	if err != nil {
		b.Fatal(err)
	}
	ds, err := machine.RunWorkload("gcc", 60, 5)
	if err != nil {
		b.Fatal(err)
	}
	sample := &ds.Rows[ds.Len()-1].Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.Estimate(sample)
	}
}

// BenchmarkExtractMetrics measures counter-sample normalization alone.
func BenchmarkExtractMetrics(b *testing.B) {
	ds, err := machine.RunWorkload("gcc", 60, 5)
	if err != nil {
		b.Fatal(err)
	}
	sample := &ds.Rows[ds.Len()-1].Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.ExtractMetrics(sample)
	}
}

// BenchmarkTrain measures fitting one quadratic subsystem model on a
// minute of samples.
func BenchmarkTrain(b *testing.B) {
	ds, err := machine.RunWorkload("mcf", 120, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(core.MemBusSpec(), ds); err != nil {
			b.Fatal(err)
		}
	}
}

// trainedOn builds a small custom training/eval pair with the given
// machine configuration tweaks, for sensitivity ablations.
func validateWithConfig(b *testing.B, mutate func(*machine.Config)) float64 {
	b.Helper()
	runCfg := func(name string, seconds float64, seed uint64) *align.Dataset {
		spec, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		cfg := machine.DefaultConfig()
		cfg.Seed = seed
		if mutate != nil {
			mutate(&cfg)
		}
		srv, err := machine.New(cfg, spec)
		if err != nil {
			b.Fatal(err)
		}
		srv.Run(seconds)
		ds, err := srv.Dataset()
		if err != nil {
			b.Fatal(err)
		}
		return ds
	}
	train := runCfg("mcf", 150, 10)
	model, err := core.Train(core.MemBusSpec(), train)
	if err != nil {
		b.Fatal(err)
	}
	eval := runCfg("lucas", 120, 100)
	e, err := model.Validate(eval)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkAblationSamplePeriod sweeps the counter sampling period —
// the paper samples at 1 Hz; per-cycle normalization should make the
// models robust to faster or slower sampling.
func BenchmarkAblationSamplePeriod(b *testing.B) {
	for _, period := range []float64{0.25, 0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("period=%.2fs", period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := validateWithConfig(b, func(c *machine.Config) {
					c.SamplePeriodSec = period
				})
				b.ReportMetric(e, "mem_err%")
			}
		})
	}
}

// BenchmarkAblationDAQNoise sweeps the power-measurement noise at
// training time: regression on averaged windows should absorb even 10x
// sensor noise.
func BenchmarkAblationDAQNoise(b *testing.B) {
	for _, mult := range []float64{0.0, 1.0, 10.0} {
		b.Run(fmt.Sprintf("noise=x%.0f", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := validateWithConfig(b, func(c *machine.Config) {
					c.DAQ.NoiseStd *= mult
				})
				b.ReportMetric(e, "mem_err%")
			}
		})
	}
}

// BenchmarkAblationMemRWMix quantifies the paper's Section 4.3 proposal:
// adding a read/write-mix term to Eq. 3 should cut the FP-workload
// memory underestimation.
func BenchmarkAblationMemRWMix(b *testing.B) {
	trainA, err := machine.RunWorkload("mcf", 180, 10)
	if err != nil {
		b.Fatal(err)
	}
	trainB, err := machine.RunWorkload("diskload", 150, 11)
	if err != nil {
		b.Fatal(err)
	}
	train := align.Concat(trainA, trainB)
	base, err := core.Train(core.MemBusSpec(), train)
	if err != nil {
		b.Fatal(err)
	}
	rw, err := core.Train(core.MemBusRWSpec(), train)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := machine.RunWorkload("lucas", 150, 100)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		be, err := base.Validate(eval)
		if err != nil {
			b.Fatal(err)
		}
		re, err := rw.Validate(eval)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(be, "eq3_err%")
		b.ReportMetric(re, "eq3_rw_err%")
	}
}

// BenchmarkAblationOSUtilModel compares Eq. 1 against the Heath/Kotla
// style OS-utilization CPU model (Section 2.2.2's alternative channel).
func BenchmarkAblationOSUtilModel(b *testing.B) {
	train, err := machine.RunWorkload("gcc", 240, 10)
	if err != nil {
		b.Fatal(err)
	}
	eq1, err := core.Train(core.CPUSpec(), train)
	if err != nil {
		b.Fatal(err)
	}
	utilM, err := core.Train(core.CPUOSUtilSpec(), train)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := machine.RunWorkload("lucas", 150, 100)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		e1, err := eq1.Validate(eval)
		if err != nil {
			b.Fatal(err)
		}
		eu, err := utilM.Validate(eval)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(e1, "eq1_err%")
		b.ReportMetric(eu, "osutil_err%")
	}
}

// BenchmarkAblationDVFS compares fixed-frequency Eq. 1 against the
// frequency-aware variant on a machine running at a reduced operating
// point.
func BenchmarkAblationDVFS(b *testing.B) {
	runAt := func(schedule []float64, secsPer float64, seed uint64) *align.Dataset {
		spec, err := workload.ByName("gcc")
		if err != nil {
			b.Fatal(err)
		}
		spec.StaggerSec = 1
		cfg := machine.DefaultConfig()
		cfg.Seed = seed
		srv, err := machine.New(cfg, spec)
		if err != nil {
			b.Fatal(err)
		}
		srv.Run(20)
		for _, f := range schedule {
			srv.SetFreqScaleAll(f)
			srv.Run(secsPer)
		}
		ds, err := srv.Dataset()
		if err != nil {
			b.Fatal(err)
		}
		return ds.Skip(20)
	}
	eq1, err := core.Train(core.CPUSpec(), runAt([]float64{1.0}, 120, 10))
	if err != nil {
		b.Fatal(err)
	}
	dvfs, err := core.Train(core.CPUDVFSSpec(), runAt([]float64{1.0, 0.8, 0.6, 0.5, 0.9, 0.7}, 25, 10))
	if err != nil {
		b.Fatal(err)
	}
	eval := runAt([]float64{0.6}, 60, 99)
	for i := 0; i < b.N; i++ {
		e1, err := eq1.Validate(eval)
		if err != nil {
			b.Fatal(err)
		}
		ed, err := dvfs.Validate(eval)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(e1, "eq1_err%")
		b.ReportMetric(ed, "dvfs_err%")
	}
}

// BenchmarkAblationMachineSize retrains and validates on differently
// sized SMPs: the method is per-machine calibration, so accuracy should
// survive doubling the socket count.
func BenchmarkAblationMachineSize(b *testing.B) {
	for _, ncpu := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("cpus=%d", ncpu), func(b *testing.B) {
			run := func(name string, seconds float64, seed uint64) *align.Dataset {
				spec, err := workload.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				cfg := machine.DefaultConfig()
				cfg.NumCPUs = ncpu
				cfg.Seed = seed
				srv, err := machine.New(cfg, spec)
				if err != nil {
					b.Fatal(err)
				}
				srv.Run(seconds)
				ds, err := srv.Dataset()
				if err != nil {
					b.Fatal(err)
				}
				return ds
			}
			train := run("gcc", 180, 10)
			eq1, err := core.Train(core.CPUSpec(), train)
			if err != nil {
				b.Fatal(err)
			}
			eval := run("mesa", 150, 100)
			for i := 0; i < b.N; i++ {
				e, err := eq1.Validate(eval)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(e, "cpu_err%")
			}
		})
	}
}

// BenchmarkAblationDiskSpindown evaluates Eq. 4 on hardware with disk
// power management (which the paper's SCSI array lacked): the constant
// rotation floor assumption collapses, because spindle state is
// time-dependent and invisible to rate counters.
func BenchmarkAblationDiskSpindown(b *testing.B) {
	train, err := machine.RunWorkload("diskload", 120, 10)
	if err != nil {
		b.Fatal(err)
	}
	eq4, err := core.Train(core.DiskSpec(), train)
	if err != nil {
		b.Fatal(err)
	}
	run := func(policy disk.PowerPolicy) *align.Dataset {
		spec, err := workload.ByName("netload")
		if err != nil {
			b.Fatal(err)
		}
		cfg := machine.DefaultConfig()
		cfg.Seed = 77
		cfg.DiskPolicy = policy
		srv, err := machine.New(cfg, spec)
		if err != nil {
			b.Fatal(err)
		}
		srv.Run(100)
		ds, err := srv.Dataset()
		if err != nil {
			b.Fatal(err)
		}
		return ds.Skip(20)
	}
	server := run(disk.PowerPolicy{})
	mobile := run(disk.MobilePolicy())
	for i := 0; i < b.N; i++ {
		es, err := eq4.Validate(server)
		if err != nil {
			b.Fatal(err)
		}
		em, err := eq4.Validate(mobile)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(es, "server_disk_err%")
		b.ReportMetric(em, "spindown_disk_err%")
	}
}

// fleetBenchConfig is the small-generation box fleet-scale benchmarks
// populate: 1 CPU x 2 threads and one disk keeps a thousand nodes cheap
// enough to step every iteration while still exercising the full
// counter -> estimate pipeline per node.
func fleetBenchConfig(seed uint64) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 1
	cfg.ThreadsPerCPU = 2
	cfg.NumDisks = 1
	cfg.Seed = seed
	return cfg
}

// fleetBenchWorkloads cycles across the fleet so shards hold
// mixed-cost nodes rather than copies of one trace.
var fleetBenchWorkloads = []string{"gcc", "mcf", "mesa", "vortex"}

// buildBenchFleet assembles n mixed-config, mixed-workload nodes.
func buildBenchFleet(b *testing.B, est *core.Estimator, n, workers int) *cluster.Cluster {
	b.Helper()
	c, err := cluster.New(est)
	if err != nil {
		b.Fatal(err)
	}
	c.SetWorkers(workers)
	for i := 0; i < n; i++ {
		wl := fleetBenchWorkloads[i%len(fleetBenchWorkloads)]
		if _, err := c.AddMixedConfig(fmt.Sprintf("fleet-%05d", i),
			fleetBenchConfig(uint64(3000+i)),
			[]machine.Placement{{Workload: wl, Thread: i % 2}}); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkFleet1kNodes steps a 1,000-node mixed-config fleet two
// simulated seconds per iteration (the aligner needs at least two
// sample windows to pair logs) through the sharded run path — the
// fleet-scale capacity number ROADMAP item 1 asks for, reported as
// simulated node-seconds per wall second.
func BenchmarkFleet1kNodes(b *testing.B) {
	est, err := runner().Estimator()
	if err != nil {
		b.Fatal(err)
	}
	const (
		nodes  = 1000
		simSec = 2.0
	)
	for _, workers := range []int{4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := buildBenchFleet(b, est, nodes, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Run(simSec); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(nodes)*simSec*float64(b.N)/s, "sim_node_s/s")
			}
			_, total, err := c.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(total, "fleet_W")
		})
	}
}

// BenchmarkClusterConstruct10k builds a 10,000-node fleet per
// iteration: the regression benchmark for the former O(n^2)
// duplicate-name scan in Cluster.add, which dominated construction at
// this scale before the name-index map.
func BenchmarkClusterConstruct10k(b *testing.B) {
	est, err := runner().Estimator()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		c := buildBenchFleet(b, est, 10000, 8)
		if c.NumNodes() != 10000 {
			b.Fatal("short fleet")
		}
	}
}
