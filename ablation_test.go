package trickledown_test

import (
	"testing"

	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/power"
)

// TestModelSelectionNarrative asserts the quantitative core of the
// paper's Sections 4.2.3/4.2.4 model selection: interrupt-driven models
// win for disk and I/O, and uncacheable-access models lose badly once
// the DC offset is removed.
func TestModelSelectionNarrative(t *testing.T) {
	train, err := machine.RunWorkload("diskload", 120, 10)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := machine.RunWorkload("diskload", 120, 100)
	if err != nil {
		t.Fatal(err)
	}

	fit := func(spec core.ModelSpec) *core.Model {
		t.Helper()
		m, err := core.Train(spec, train)
		if err != nil {
			t.Fatalf("training %s: %v", spec.Name, err)
		}
		return m
	}
	dcErr := func(m *core.Model, dc float64) float64 {
		t.Helper()
		e, err := m.ValidateOffset(eval, dc)
		if err != nil {
			t.Fatalf("validating %s: %v", m.Spec.Name, err)
		}
		return e
	}

	diskDC := power.DiskIdlePower(2)
	disk := dcErr(fit(core.DiskSpec()), diskDC)
	diskUC := dcErr(fit(core.DiskUncacheableSpec()), diskDC)
	if diskUC < 4*disk {
		t.Errorf("uncacheable disk model error %.1f%% should dwarf Eq.4's %.1f%%", diskUC, disk)
	}

	io := dcErr(fit(core.IOSpec()), power.IOBasePower)
	ioUC := dcErr(fit(core.IOUncacheableSpec()), power.IOBasePower)
	if ioUC < 4*io {
		t.Errorf("uncacheable I/O model error %.1f%% should dwarf Eq.5's %.1f%%", ioUC, io)
	}

	// Raw-error ordering: the production models beat the rejected DMA
	// variants on the training-style workload.
	rawErr := func(m *core.Model) float64 {
		e, err := m.Validate(eval)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if d, alt := rawErr(fit(core.DiskSpec())), rawErr(fit(core.DiskDMASpec())); alt < d {
		t.Errorf("DMA-only disk model (%.3f%%) beat Eq.4 (%.3f%%)", alt, d)
	}
}

// TestHeadlineClaim asserts the paper's abstract: the five models
// estimate subsystem power "with an average error of less than 9% per
// subsystem" across the full workload set.
func TestHeadlineClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation sweep")
	}
	gcc, err := machine.RunWorkload("gcc", 180, 10)
	if err != nil {
		t.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 150, 10)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		t.Fatal(err)
	}
	workloads := []string{
		"idle", "gcc", "mcf", "vortex", "art", "lucas", "mesa", "mgrid",
		"wupwise", "dbt-2", "specjbb", "diskload",
	}
	sums := make(map[power.Subsystem]float64)
	for _, name := range workloads {
		ds, err := machine.RunWorkload(name, 120, 200)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range power.Subsystems() {
			e, err := est.Model(s).Validate(ds)
			if err != nil {
				t.Fatalf("%s on %s: %v", s, name, err)
			}
			sums[s] += e
		}
	}
	for _, s := range power.Subsystems() {
		avg := sums[s] / float64(len(workloads))
		if avg >= 9 {
			t.Errorf("%s average error %.2f%% breaks the <9%% headline", s, avg)
		}
	}
}

// TestPaperModelSelectionReproduced mechanizes Section 3.3.1 end to end:
// given the paper's candidate event sets and its training/holdout
// workloads, cross-validated selection arrives at the paper's published
// choices (Eq. 3 for memory, Eq. 4 for disk, Eq. 5 for I/O).
func TestPaperModelSelectionReproduced(t *testing.T) {
	mesa, err := machine.RunWorkload("mesa", 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 260, 11)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 150, 12)
	if err != nil {
		t.Fatal(err)
	}
	dbt, err := machine.RunWorkload("dbt-2", 120, 13)
	if err != nil {
		t.Fatal(err)
	}

	// Memory: train on mesa (the paper's first attempt), hold out mcf
	// (the failure case). Selection must abandon the L3 model.
	memBest, memRank, err := core.SelectModel(
		[]core.ModelSpec{core.MemL3Spec(), core.MemBusSpec()}, mesa, mcf)
	if err != nil {
		t.Fatal(err)
	}
	if memBest.Spec.Name != core.MemBusSpec().Name {
		t.Errorf("memory selection picked %s; ranking %v", memBest.Spec.Name, memRank)
	}

	// Disk: train and hold out on disk-exercising traces; the interrupt
	// +DMA model must beat the single-input rejects.
	diskBest, diskRank, err := core.SelectModel(core.DiskCandidates(), dl, dbt, dl)
	if err != nil {
		t.Fatal(err)
	}
	if diskBest.Spec.Name != core.DiskSpec().Name {
		t.Errorf("disk selection picked %s; ranking %v", diskBest.Spec.Name, diskRank)
	}

	// I/O: the interrupt model must beat uncacheable accesses; DMA can
	// tie on sequential traffic, so just require Eq.5 ranks above uc.
	_, ioRank, err := core.SelectModel(core.IOCandidates(), dl, dbt, dl)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, c := range ioRank {
		if c.Model != nil {
			pos[c.Model.Spec.Name] = i
		}
	}
	if pos[core.IOSpec().Name] > pos[core.IOUncacheableSpec().Name] {
		t.Errorf("I/O selection ranked uncacheable above interrupts: %v", ioRank)
	}
}
