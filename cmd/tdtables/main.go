// Command tdtables regenerates the paper's Tables 1-4 (subsystem power
// characterization and model validation errors) plus the fitted model
// equations, printing our values next to the published ones.
//
// Usage:
//
//	tdtables [-scale 1.0] [-seed 100] [-trainseed 10] [-table 1|2|3|4|eq|all] [-workers N]
//	         [-metrics-addr :9090] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"trickledown/internal/experiments"
	"trickledown/internal/telemetry"

	// Linked for its metric registrations: /metrics exposes the full
	// schema regardless of which subsystems a run exercises.
	_ "trickledown/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdtables: ")
	scale := flag.Float64("scale", 1.0, "duration multiplier for every run")
	seed := flag.Uint64("seed", 100, "seed for validation runs")
	trainSeed := flag.Uint64("trainseed", 10, "seed for training runs")
	table := flag.String("table", "all", "which table to produce: 1, 2, 3, 4, eq or all")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	verbose := flag.Bool("v", false, "debug-level logging with periodic progress lines")
	flag.Parse()

	logger := telemetry.SetupLogger(*verbose)
	if *metricsAddr != "" {
		obs, err := telemetry.Serve(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("telemetry listening", "addr", obs.Addr().String(),
			"metrics", fmt.Sprintf("http://%s/metrics", obs.Addr()))
	}
	if *verbose {
		defer telemetry.StartProgress(logger, 2*time.Second)()
	}

	r := experiments.NewRunner(experiments.Options{
		Seed: *seed, TrainSeed: *trainSeed, Scale: *scale, Workers: *workers,
	})

	type job struct {
		name string
		run  func() error
	}
	renderTable := func(get func() (*experiments.Table, error)) func() error {
		return func() error {
			t, err := get()
			if err != nil {
				return err
			}
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			return nil
		}
	}
	jobs := []job{
		{"1", renderTable(r.Table1)},
		{"2", renderTable(r.Table2)},
		{"3", renderTable(r.Table3)},
		{"4", renderTable(r.Table4)},
		{"eq", func() error {
			eqs, err := r.Equations()
			if err != nil {
				return err
			}
			fmt.Println("Fitted models (coefficients are this machine's; the paper's embed its testbed):")
			for _, e := range eqs {
				fmt.Println("  " + e)
			}
			fmt.Println()
			return nil
		}},
	}
	ran := false
	for _, j := range jobs {
		if *table != "all" && *table != j.name {
			continue
		}
		ran = true
		start := time.Now()
		logger.Debug("generating table", "table", j.name)
		if err := j.run(); err != nil {
			log.Fatal(err)
		}
		logger.Debug("table done", "table", j.name, "elapsed", time.Since(start))
	}
	if !ran {
		log.Fatalf("unknown -table %q", *table)
	}
	// Cells that failed render as n/a; say why, once, at the end.
	if err := r.CellErrors(); err != nil {
		logger.Warn("some cells degraded to n/a", "err", err)
	}
}
