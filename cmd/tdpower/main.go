// Command tdpower is the user-facing tool of the trickle-down library: a
// sensorless system power meter for the simulated server. It trains the
// paper's five subsystem models once, then runs any workload and streams
// per-second power estimates next to the (normally invisible) measured
// rail power.
//
// Usage:
//
//	tdpower [-workload gcc] [-seconds 120] [-seed 7] [-scale 0.5] [-percpu] [-quiet] [-workers N]
//	tdpower -placement "gcc:0,gcc:1:30,dbt-2:2"   # heterogeneous placement wl:thread[:start]
//	tdpower -record trace.csv ...     # save the aligned power+counter log
//	tdpower -replay trace.csv ...     # analyze a recorded log instead of simulating
//	tdpower -record-wtrace day.wtr .. # save the per-thread workload demand as a WTR1 trace
//	tdpower -replay-wtrace day.wtr .. # re-simulate from a WTR1 trace (byte-identical ground truth)
//	tdpower -metrics-addr :9090 ...   # live /metrics, /debug/vars and /debug/pprof
//	tdpower -chaos [-chaos-seed 1]    # inject sensor faults, recover via the robust merge
//	tdpower -list
//
// The -percpu flag adds the Equation 1 per-processor attribution, the
// paper's SMP accounting use case. Status lines go to stderr as
// structured slog records (-v raises the level to Debug and enables a
// periodic progress line); results stay on stdout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/experiments"
	"trickledown/internal/faults"
	"trickledown/internal/machine"
	"trickledown/internal/perfctr"
	"trickledown/internal/power"
	"trickledown/internal/sim"
	"trickledown/internal/stats"
	"trickledown/internal/telemetry"
	"trickledown/internal/tracez"
	"trickledown/internal/workload"
	"trickledown/internal/wtrace"

	// Linked for its metric registrations only: /metrics always exposes
	// the full sim/pool/cluster/daq schema (at zero when unused), so
	// dashboards never see series appear and disappear between binaries.
	_ "trickledown/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdpower: ")
	wl := flag.String("workload", "gcc", "workload to run (see -list)")
	seconds := flag.Float64("seconds", 120, "run length in simulated seconds")
	seed := flag.Uint64("seed", 7, "simulation seed")
	scale := flag.Float64("scale", 0.5, "training-run duration multiplier")
	perCPU := flag.Bool("percpu", false, "print per-processor CPU power attribution")
	quiet := flag.Bool("quiet", false, "suppress the per-second stream, print only the summary")
	list := flag.Bool("list", false, "list workloads and exit")
	placement := flag.String("placement", "", `heterogeneous placement: comma-separated "workload:thread[:startSec]" (overrides -workload)`)
	record := flag.String("record", "", "write the aligned power+counter log to this CSV file")
	replay := flag.String("replay", "", "analyze a recorded CSV log instead of simulating")
	recordWtrace := flag.String("record-wtrace", "", "record the run's per-thread workload demand to this WTR1 trace file")
	replayWtrace := flag.String("replay-wtrace", "", "simulate from a recorded WTR1 workload trace (overrides -workload and -placement)")
	workers := flag.Int("workers", 0, "max concurrent training simulations (0 = GOMAXPROCS)")
	chaos := flag.Bool("chaos", false, "inject deterministic sensor faults (dropped syncs, a DAQ dropout, rare counter glitches) and recover via the robust merge")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the -chaos fault schedule")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090; empty = off)")
	verbose := flag.Bool("v", false, "debug-level logging with periodic progress lines")
	flag.Parse()

	logger := telemetry.SetupLogger(*verbose)
	if *metricsAddr != "" {
		obs, err := telemetry.Serve(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("telemetry listening", "addr", obs.Addr().String(),
			"metrics", fmt.Sprintf("http://%s/metrics", obs.Addr()))
	}
	if *verbose {
		defer telemetry.StartProgress(logger, 2*time.Second)()
	}

	if *list {
		fmt.Println("workloads:", strings.Join(workload.TableOrder(), " "))
		return
	}

	logger.Info("training models", "scale", *scale, "workers", *workers)
	runner := experiments.NewRunner(experiments.Options{Seed: 100, TrainSeed: 10, Scale: *scale, Workers: *workers})
	est, err := runner.Estimator()
	if err != nil {
		log.Fatal(err)
	}

	var ds *align.Dataset
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		ds, err = align.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("replaying recorded log", "samples", ds.Len(), "file", *replay)
	} else {
		cfg := machine.DefaultConfig()
		cfg.Seed = *seed
		var srv *machine.Server
		var label string
		var rec *wtrace.Recorder
		switch {
		case *replayWtrace != "":
			tr, err := wtrace.ReadFile(*replayWtrace)
			if err != nil {
				log.Fatal(err)
			}
			placements, err := tr.Placements()
			if err != nil {
				log.Fatal(err)
			}
			if srv, err = machine.NewMixed(cfg, placements); err != nil {
				log.Fatal(err)
			}
			fp, err := tr.Fingerprint()
			if err != nil {
				log.Fatal(err)
			}
			logger.Info("replaying workload trace", "file", *replayWtrace,
				"workload", tr.Header.Workload, "threads", tr.Header.Threads,
				"duration_sec", tr.Duration(), "fingerprint", fp)
			label = "replay:" + tr.Header.Workload
		case *placement != "":
			placements, err := parsePlacements(*placement)
			if err != nil {
				log.Fatal(err)
			}
			if *recordWtrace != "" {
				if rec, err = wrapPlacements(cfg, placements); err != nil {
					log.Fatal(err)
				}
			}
			if srv, err = machine.NewMixed(cfg, placements); err != nil {
				log.Fatal(err)
			}
			label = "mixed [" + *placement + "]"
		default:
			spec, err := workload.ByName(*wl)
			if err != nil {
				log.Fatal(err)
			}
			if *recordWtrace != "" {
				if rec, err = wtrace.NewRecorder(spec.Name, 1/cfg.Slice.Seconds(), spec.Instances); err != nil {
					log.Fatal(err)
				}
				if spec, err = wtrace.RecordSpec(spec, rec); err != nil {
					log.Fatal(err)
				}
			}
			if srv, err = machine.New(cfg, spec); err != nil {
				log.Fatal(err)
			}
			label = spec.Name
		}
		if *chaos {
			plan := chaosPlan(*chaosSeed, *seconds)
			faults.Attach(plan, "local", srv)
			logger.Info("chaos enabled", "seed", *chaosSeed, "specs", len(plan.Specs))
		}
		logger.Info("running workload", "workload", label, "seconds", *seconds,
			"cpus", cfg.NumCPUs, "threads_per_cpu", cfg.ThreadsPerCPU, "disks", cfg.NumDisks)
		srv.Run(*seconds)
		if *chaos {
			// The strict merge would refuse the degraded logs; the robust
			// path repairs them and reports what it had to do.
			var quality align.Quality
			if ds, quality, err = srv.DatasetRobust(); err != nil {
				log.Fatal(err)
			}
			logger.Info("data quality", "degraded", quality.Degraded(), "summary", quality.String())
			// The chaos drill's inspectable artifact: what the process
			// recorder captured (training cells plus any errored runs).
			ts := tracez.Default().Stats()
			logger.Info("traces", "started", ts.Started, "finished", ts.Finished,
				"anomalies", ts.Anomalies)
			for _, tr := range tracez.Default().Snapshot().Errored {
				logger.Info("errored trace", "id", tr.ID, "node", tr.Node,
					"outcome", tr.Outcome, "e2e_ms", tr.E2EMs)
			}
		} else if ds, err = srv.Dataset(); err != nil {
			log.Fatal(err)
		}
		if rec != nil {
			tr, err := rec.Trace()
			if err != nil {
				log.Fatal(err)
			}
			if err := tr.WriteFile(*recordWtrace); err != nil {
				log.Fatal(err)
			}
			fp, err := tr.Fingerprint()
			if err != nil {
				log.Fatal(err)
			}
			logger.Info("recorded workload trace", "file", *recordWtrace,
				"samples", tr.Header.Samples, "fingerprint", fp)
		}
	}
	if ds.Len() == 0 {
		log.Fatal("run produced no samples")
	}
	for _, issue := range core.CheckDataset(ds) {
		logger.Warn("dataset issue", "issue", issue)
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.WriteCSV(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		logger.Info("recorded aligned log", "samples", ds.Len(), "file", *record)
	}

	if !*quiet {
		header := fmt.Sprintf("%4s | %21s | %21s | %21s | %8s", "sec",
			"CPU est/meas", "Memory est/meas", "I/O est/meas", "total")
		fmt.Println(header)
		fmt.Println(strings.Repeat("-", len(header)))
	}
	for i := range ds.Rows {
		row := &ds.Rows[i]
		estR := est.Estimate(&row.Counters)
		if !*quiet {
			fmt.Printf("%4.0f | %9.1f /%9.1f | %9.1f /%9.1f | %9.1f /%9.1f | %8.1f\n",
				row.Counters.TargetSeconds,
				estR[power.SubCPU], row.Power[power.SubCPU],
				estR[power.SubMemory], row.Power[power.SubMemory],
				estR[power.SubIO], row.Power[power.SubIO],
				estR.Total())
		}
		if *perCPU {
			printPerCPU(est, &row.Counters)
		}
	}

	fmt.Println("\nper-subsystem average error (Eq. 6):")
	for _, s := range power.Subsystems() {
		measured, modeled := est.Model(s).Trace(ds)
		e, err := stats.AverageError(modeled, measured)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %6.2f%%   (mean measured %.1f W)\n", s, e, stats.Mean(measured))
	}
}

// chaosPlan builds the -chaos fault schedule: recoverable sensor-chain
// faults only (no crash — the meter should finish its run and show the
// repair), deterministic in the seed.
func chaosPlan(seed uint64, seconds float64) *faults.Plan {
	return &faults.Plan{Seed: seed, Specs: []faults.Spec{
		{Kind: faults.SyncDrop, Start: 0, Magnitude: 0.1},
		{Kind: faults.DAQDropout, Channel: power.SubMemory, Start: seconds * 0.3, Duration: 2},
		{Kind: faults.CounterGlitch, CPU: -1, Start: 0, Magnitude: 0.01},
	}}
}

// wrapPlacements arms a WTR1 recorder over a mixed placement run: each
// placement's generator is wrapped to record its hardware thread's
// demand stream, and the recorder's chipset bias is set to the average
// over distinct placed workloads (what the machine itself applies), so
// a replay reproduces the chipset rail too.
func wrapPlacements(cfg machine.Config, placements []machine.Placement) (*wtrace.Recorder, error) {
	rec, err := wtrace.NewRecorder("mixed", 1/cfg.Slice.Seconds(), cfg.NumCPUs*cfg.ThreadsPerCPU)
	if err != nil {
		return nil, err
	}
	seen := map[string]float64{}
	for i := range placements {
		pl := &placements[i]
		spec, err := workload.ByName(pl.Workload)
		if err != nil {
			return nil, err
		}
		seen[spec.Name] = spec.ChipsetDomainBias
		inner := spec.Make
		thread, start := pl.Thread, pl.StartSec
		wspec := spec
		wspec.Make = func(instance int, rng *sim.RNG) workload.Generator {
			g := inner(instance, rng)
			w, err := rec.Wrap(thread, start, g)
			if err != nil {
				return g
			}
			return w
		}
		pl.Spec = &wspec
	}
	var bias float64
	for _, b := range seen {
		bias += b
	}
	if len(seen) > 0 {
		rec.SetChipsetBias(bias / float64(len(seen)))
	}
	return rec, nil
}

// parsePlacements parses "workload:thread[:startSec]" items.
func parsePlacements(in string) ([]machine.Placement, error) {
	var out []machine.Placement
	for _, item := range strings.Split(in, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("tdpower: bad placement %q (want workload:thread[:startSec])", item)
		}
		var pl machine.Placement
		pl.Workload = parts[0]
		if _, err := fmt.Sscanf(parts[1], "%d", &pl.Thread); err != nil {
			return nil, fmt.Errorf("tdpower: bad thread in %q: %v", item, err)
		}
		if len(parts) == 3 {
			if _, err := fmt.Sscanf(parts[2], "%g", &pl.StartSec); err != nil {
				return nil, fmt.Errorf("tdpower: bad start in %q: %v", item, err)
			}
		}
		out = append(out, pl)
	}
	return out, nil
}

func printPerCPU(est *core.Estimator, s *perfctr.Sample) {
	per := est.PerCPUPower(s)
	parts := make([]string, len(per))
	for i, w := range per {
		parts[i] = fmt.Sprintf("cpu%d %.1fW", i, w)
	}
	fmt.Printf("       attribution: %s\n", strings.Join(parts, "  "))
}
