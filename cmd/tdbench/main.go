// Command tdbench runs the repo's fixed benchmark suite reproducibly
// and records the result as machine-readable JSON, so performance work
// on the slice-stepping hot path is argued with checked-in numbers
// instead of anecdotes.
//
// It shells out to `go test -bench -benchmem`, streams the raw output
// through, parses it (internal/benchjson), stamps the run with date and
// machine metadata, and writes BENCH_<date>.json. With -baseline it
// compares allocs/op against a previous record and exits non-zero on a
// regression beyond -maxregress — the CI gate. With -profile it also
// captures CPU and allocation profiles for pprof.
//
// Usage:
//
//	tdbench                                  # run suite, write BENCH_<date>.json
//	tdbench -baseline BENCH_2026-08-06.json  # also gate allocs/op at +20%
//	tdbench -profile prof                    # also write prof.cpu / prof.mem
//	tdbench -bench 'BenchmarkTable1$' -benchtime 10x -o /tmp/out.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"trickledown/internal/benchjson"
)

// defaultSuite is the fixed benchmark set a BENCH_*.json records: the
// two regeneration paths the PR optimized (tables and figures carry the
// subsystem error metrics), the substrate hot path, parallel cluster
// stepping, the per-sample estimation cost, and the fleet-scale numbers
// (1k-node sharded stepping throughput, 10k-node construction).
const defaultSuite = "BenchmarkTable1$|BenchmarkTable3$|BenchmarkTable4$|" +
	"BenchmarkFigure5$|BenchmarkSimulationSecond$|BenchmarkCluster8Nodes$|" +
	"BenchmarkEstimate$|BenchmarkExtractMetrics$|BenchmarkTrain$|" +
	"BenchmarkFleet1kNodes$|BenchmarkClusterConstruct10k$"

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdbench: ")
	bench := flag.String("bench", defaultSuite, "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "3x", "iterations or duration per benchmark (go test -benchtime)")
	out := flag.String("o", "", "output JSON path (default BENCH_<date>.json)")
	baseline := flag.String("baseline", "", "baseline BENCH_*.json to gate allocs/op against")
	maxRegress := flag.Float64("maxregress", 0.20, "allowed fractional allocs/op growth over the baseline")
	profile := flag.String("profile", "", "profile path prefix; writes <prefix>.cpu and <prefix>.mem")
	pkg := flag.String("pkg", ".", "package to benchmark")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	args := []string{"test", "-run=NONE", "-bench=" + *bench,
		"-benchmem", "-benchtime=" + *benchtime}
	if *profile != "" {
		args = append(args, "-cpuprofile="+*profile+".cpu", "-memprofile="+*profile+".mem")
	}
	args = append(args, *pkg)
	log.Printf("go %s", strings.Join(args, " "))

	cmd := exec.Command("go", args...)
	var buf strings.Builder
	cmd.Stdout = io.MultiWriter(os.Stdout, &buf)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		log.Fatalf("benchmark run failed: %v", err)
	}

	res, err := benchjson.Parse([]byte(buf.String()))
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Benchmarks) == 0 {
		log.Fatalf("no benchmarks matched %q", *bench)
	}
	res.Date = date
	res.GoVersion = runtime.Version()
	res.Benchtime = *benchtime
	if err := benchjson.Write(path, res); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", path, len(res.Benchmarks))
	if *profile != "" {
		log.Printf("profiles: %s.cpu %s.mem (inspect with `go tool pprof`)", *profile, *profile)
	}

	if *baseline == "" {
		return
	}
	base, err := benchjson.Load(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	errs := benchjson.CompareAllocs(base, res, *maxRegress)
	for _, e := range errs {
		log.Printf("REGRESSION: %v", e)
	}
	if len(errs) > 0 {
		log.Fatalf("%d allocation regression(s) vs %s", len(errs), *baseline)
	}
	log.Printf("allocs/op within +%.0f%% of %s for every benchmark", *maxRegress*100, *baseline)
}
