// Command tdfigures regenerates the paper's Figures 2-7: the
// measured-vs-modeled power traces for each subsystem model and the
// prefetch/non-prefetch bus-transaction sweep. Each figure is printed as
// an ASCII plot and optionally written as CSV for external plotting.
//
// Usage:
//
//	tdfigures [-scale 1.0] [-seed 100] [-trainseed 10] [-out DIR] [-figure 2..7|all] [-workers N]
//	          [-metrics-addr :9090] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"trickledown/internal/experiments"
	"trickledown/internal/telemetry"
	"trickledown/internal/trace"

	// Linked for its metric registrations: /metrics exposes the full
	// schema regardless of which subsystems a run exercises.
	_ "trickledown/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdfigures: ")
	scale := flag.Float64("scale", 1.0, "duration multiplier for every run")
	seed := flag.Uint64("seed", 100, "seed for trace runs")
	trainSeed := flag.Uint64("trainseed", 10, "seed for training runs")
	outDir := flag.String("out", "", "directory for CSV output (omit to skip)")
	figure := flag.String("figure", "all", "which figure to produce: 2, 3, 4, 5, 6, 7 or all")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	verbose := flag.Bool("v", false, "debug-level logging with periodic progress lines")
	flag.Parse()

	logger := telemetry.SetupLogger(*verbose)
	if *metricsAddr != "" {
		obs, err := telemetry.Serve(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("telemetry listening", "addr", obs.Addr().String(),
			"metrics", fmt.Sprintf("http://%s/metrics", obs.Addr()))
	}
	if *verbose {
		defer telemetry.StartProgress(logger, 2*time.Second)()
	}

	r := experiments.NewRunner(experiments.Options{
		Seed: *seed, TrainSeed: *trainSeed, Scale: *scale, Workers: *workers,
	})

	emit := func(name string, tr *trace.Trace, avgErr, paperErr float64) error {
		if err := tr.WriteASCII(os.Stdout, trace.PlotOptions{Width: 110, Height: 18}); err != nil {
			return err
		}
		if avgErr >= 0 {
			fmt.Printf("average error: %.2f%% (paper: %.2f%%)\n", avgErr, paperErr)
		}
		fmt.Println()
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*outDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return tr.WriteCSV(f)
	}

	figFn := func(get func() (*experiments.Figure, error), name string) func() error {
		return func() error {
			fig, err := get()
			if err != nil {
				return err
			}
			return emit(name, fig.Trace, fig.AvgErr, fig.PaperErr)
		}
	}
	jobs := map[string]func() error{
		"2": figFn(r.Figure2, "figure2"),
		"3": figFn(r.Figure3, "figure3"),
		"4": func() error {
			tr, err := r.Figure4()
			if err != nil {
				return err
			}
			return emit("figure4", tr, -1, 0)
		},
		"5": func() error {
			if err := figFn(r.Figure5, "figure5")(); err != nil {
				return err
			}
			// The companion trace quantifies why Eq. 2 was abandoned.
			return figFn(r.Figure5L3, "figure5_l3_failure")()
		},
		"6": figFn(r.Figure6, "figure6"),
		"7": figFn(r.Figure7, "figure7"),
	}
	order := []string{"2", "3", "4", "5", "6", "7"}
	ran := false
	for _, name := range order {
		if *figure != "all" && *figure != name {
			continue
		}
		ran = true
		start := time.Now()
		logger.Debug("generating figure", "figure", name)
		if err := jobs[name](); err != nil {
			log.Fatal(err)
		}
		logger.Debug("figure done", "figure", name, "elapsed", time.Since(start))
	}
	if !ran {
		log.Fatalf("unknown -figure %q", *figure)
	}
}
