// Command calibrate compares the simulated server's per-workload rail
// power against the paper's Table 1, reporting both the full-run average
// (which includes the staggered-start ramp) and the sustained level once
// all instances are running. It is a development tool for tuning the
// workload profiles.
package main

import (
	"fmt"

	"trickledown/internal/machine"
	"trickledown/internal/power"
	"trickledown/internal/workload"
)

var paper = map[string][5]float64{
	"idle":     {38.4, 19.9, 28.1, 32.9, 21.6},
	"gcc":      {162, 20.0, 34.2, 32.9, 21.8},
	"mcf":      {167, 20.0, 39.6, 32.9, 21.9},
	"vortex":   {175, 17.3, 35.0, 32.9, 21.9},
	"art":      {159, 18.7, 35.8, 33.5, 21.9},
	"lucas":    {135, 19.5, 46.4, 33.5, 22.1},
	"mesa":     {165, 16.8, 33.9, 33.0, 21.8},
	"mgrid":    {146, 19.0, 45.1, 32.9, 22.1},
	"wupwise":  {167, 18.8, 45.2, 33.5, 22.1},
	"dbt-2":    {48.3, 19.8, 29.0, 33.2, 21.6},
	"specjbb":  {112, 18.7, 37.8, 32.9, 21.9},
	"diskload": {123, 19.9, 42.5, 35.2, 22.2},
}

func main() {
	fmt.Printf("%-9s %-9s  %7s %7s %7s %7s %7s\n", "workload", "series", "CPU", "Chip", "Mem", "IO", "Disk")
	for _, name := range workload.TableOrder() {
		spec, _ := workload.ByName(name)
		srv, err := machine.New(machine.DefaultConfig(), spec)
		if err != nil {
			panic(err)
		}
		rampEnd := float64(spec.Instances-1)*spec.StaggerSec + 30
		var sus power.Reading
		var susN int64
		srv.OnSlice(func(si machine.SliceInfo) {
			if si.Seconds >= rampEnd {
				for i, w := range si.Truth {
					sus[i] += w
				}
				susN++
			}
		})
		srv.Run(spec.DefaultDuration)
		m := srv.TruthMean()
		if susN > 0 {
			for i := range sus {
				sus[i] /= float64(susN)
			}
		}
		p := paper[name]
		row := func(label string, r [5]float64) {
			fmt.Printf("%-9s %-9s  %7.1f %7.2f %7.1f %7.2f %7.2f\n",
				name, label, r[0], r[1], r[2], r[3], r[4])
		}
		row("paper", p)
		row("full-avg", [5]float64(m))
		row("sustained", [5]float64(sus))
	}
}
