package main

import (
	"testing"
	"time"
)

// An expiring deadline must yield the "incomplete" exit code, promptly
// and without hanging — the contract an interrupted CI job depends on.
func TestRunTimeoutExitsIncomplete(t *testing.T) {
	done := make(chan int, 1)
	go func() {
		done <- run(7, 0.02, 1, 5, 50, 0.95, "", false, false, false,
			"", time.Nanosecond, "")
	}()
	select {
	case code := <-done:
		if code != 2 {
			t.Fatalf("exit code = %d, want 2 for an expired deadline", code)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("run did not return after its deadline expired")
	}
}

// A typo'd -mistrain name must be rejected, not silently ignored — an
// ignored typo would make CI's negative control vacuously pass.
func TestRunRejectsUnknownMistrain(t *testing.T) {
	if code := run(7, 0.02, 1, 5, 50, 0.95, "", false, false, false,
		"", 0, "Banana"); code != 2 {
		t.Fatalf("unknown -mistrain exit = %d, want 2", code)
	}
}

// The full in-process pipeline: bless a corpus, gate cleanly (exit 0),
// then prove the gate fails (exit 1) when one model is mistrained.
func TestRunGateAndMistrain(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full validation passes")
	}
	golden := t.TempDir() + "/GOLDEN.json"
	if code := run(7, 0.02, 0, 5, 50, 0.95, golden, false, true, true,
		"", 0, ""); code != 0 {
		t.Fatalf("update run exit = %d, want 0", code)
	}
	if code := run(7, 0.02, 0, 5, 50, 0.95, golden, true, false, true,
		"", 0, ""); code != 0 {
		t.Fatalf("clean gate exit = %d, want 0", code)
	}
	if code := run(7, 0.02, 0, 5, 50, 0.95, golden, true, false, true,
		"", 0, "Memory"); code != 1 {
		t.Fatalf("mistrained gate exit = %d, want 1", code)
	}
}
