// Command tdvalidate runs the paper-conformance validation subsystem:
// leave-one-workload-out cross-validation of the five subsystem power
// models over the fixed-seed workload suite, the metamorphic
// conformance checks, and (with -golden) the corpus gate that fails
// when held-out accuracy regresses past the paper's 9% bound or a
// fixed-seed dataset fingerprint drifts.
//
// Usage:
//
//	tdvalidate                          # CV + checks, print summary
//	tdvalidate -o report.json           # also write the JSON report
//	tdvalidate -golden GOLDEN.json -gate   # CI gate: exit 1 on violation
//	tdvalidate -golden GOLDEN.json -update # re-bless the corpus
//	tdvalidate -mistrain Memory -golden GOLDEN.json -gate  # must fail
//
// Exit codes: 0 pass, 1 gate violation (or mistrain requested), 2 run
// incomplete (cancelled, timed out, or a fold failed).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/experiments"
	"trickledown/internal/power"
	"trickledown/internal/validate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdvalidate: ")
	seed := flag.Uint64("seed", 100, "validation run seed")
	scale := flag.Float64("scale", 0.25, "duration scale (1.0 = paper-length traces)")
	workers := flag.Int("workers", 0, "fold/simulation parallelism (0 = GOMAXPROCS)")
	warmup := flag.Int("warmup", 5, "rows trimmed from each trace before use")
	boot := flag.Int("boot", 500, "bootstrap resamples for the error CIs")
	conf := flag.Float64("confidence", 0.95, "bootstrap CI coverage")
	golden := flag.String("golden", "", "golden corpus path (GOLDEN.json)")
	gate := flag.Bool("gate", false, "fail (exit 1) on any golden-corpus violation")
	update := flag.Bool("update", false, "re-bless the golden corpus from this run")
	runChecks := flag.Bool("checks", true, "run the metamorphic conformance checks")
	out := flag.String("o", "", "write the JSON report to this path")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none)")
	mistrain := flag.String("mistrain", "", "deliberately corrupt this subsystem's model (CI negative test)")
	flag.Parse()

	os.Exit(run(*seed, *scale, *workers, *warmup, *boot, *conf,
		*golden, *gate, *update, *runChecks, *out, *timeout, *mistrain))
}

func run(seed uint64, scale float64, workers, warmup, boot int, conf float64,
	golden string, gate, update, runChecks bool, out string, timeout time.Duration,
	mistrain string) int {
	// A typo'd -mistrain would corrupt nothing and pass the gate, turning
	// CI's negative control vacuous — reject unknown names outright.
	if mistrain != "" && !knownSubsystem(mistrain) {
		log.Printf("unknown -mistrain subsystem %q (want one of %s)", mistrain, subsystemNames())
		return 2
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// A gate run must reproduce the corpus configuration exactly, or the
	// fingerprints could not possibly match; adopt it up front.
	var corpus *validate.Golden
	if golden != "" && !update {
		g, err := validate.LoadGolden(golden)
		if err != nil {
			log.Print(err)
			return 2
		}
		corpus = g
		if seed != g.Seed || scale != g.Scale {
			log.Printf("adopting golden corpus configuration: seed=%d scale=%g", g.Seed, g.Scale)
			seed, scale = g.Seed, g.Scale
		}
	}

	opt := validate.Options{
		Seed:       seed,
		Scale:      scale,
		Warmup:     warmup,
		Resamples:  boot,
		Confidence: conf,
		Workers:    workers,
		Train:      trainFunc(mistrain),
	}
	runner := experiments.NewRunner(experiments.Options{
		Seed: seed, TrainSeed: seed, Scale: scale, Workers: workers,
	})

	report, err := validate.CrossValidate(ctx, runner, opt)
	if err != nil {
		log.Printf("cross-validation incomplete (%d/%d folds): %v",
			report.FoldsDone, report.FoldsTotal, err)
		writeReport(report, out)
		report.Render(os.Stdout)
		return 2
	}
	if runChecks {
		checks, err := validate.Checks(runner, opt)
		if err != nil {
			log.Printf("conformance checks failed to run: %v", err)
			writeReport(report, out)
			return 2
		}
		report.Checks = checks
	}
	writeReport(report, out)
	if err := report.Render(os.Stdout); err != nil {
		log.Print(err)
		return 2
	}

	if golden != "" && update {
		if err := validate.FromReport(report).Save(golden); err != nil {
			log.Print(err)
			return 2
		}
		log.Printf("blessed golden corpus: %s", golden)
		return 0
	}
	if corpus != nil {
		violations := corpus.Check(report)
		for _, v := range violations {
			fmt.Printf("gate: %s\n", v)
		}
		if len(violations) > 0 {
			if gate {
				log.Printf("FAIL: %d golden-corpus violation(s)", len(violations))
				return 1
			}
			log.Printf("%d golden-corpus violation(s) (advisory; pass -gate to enforce)", len(violations))
		} else {
			log.Print("golden corpus gate: PASS")
		}
	}
	return 0
}

func knownSubsystem(name string) bool {
	for _, s := range power.Subsystems() {
		if s.String() == name {
			return true
		}
	}
	return false
}

func subsystemNames() string {
	var names []string
	for _, s := range power.Subsystems() {
		names = append(names, s.String())
	}
	return strings.Join(names, ", ")
}

// trainFunc returns the production trainer, or one that corrupts the
// named subsystem's fitted coefficients — the hook CI uses to prove the
// gate actually fails on a bad model.
func trainFunc(mistrain string) core.TrainFunc {
	if mistrain == "" {
		return core.Train
	}
	return func(spec core.ModelSpec, ds *align.Dataset) (*core.Model, error) {
		m, err := core.Train(spec, ds)
		if err != nil {
			return nil, err
		}
		if spec.Sub.String() == mistrain {
			for i := range m.Coef {
				m.Coef[i] *= 3
			}
		}
		return m, nil
	}
}

func writeReport(r *validate.Report, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Print(err)
		return
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		log.Print(err)
		return
	}
	log.Printf("wrote %s", path)
}
