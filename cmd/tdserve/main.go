// Command tdserve is the live power-estimation service: the paper's
// "fitted once, shipped everywhere" deployment story as a long-running
// daemon. It loads (or trains) the five-subsystem estimator, then
// accepts batches of raw counter samples per node over HTTP and serves
// per-node and fleet-aggregate power, with explicit backpressure —
// bounded ingest queue, 429 + Retry-After under overload, per-client
// rate limits — instead of silent latency or unbounded memory.
//
// Usage:
//
//	tdserve [-addr :8080] [-models models.json] [-train-scale 0.05]
//	        [-queue 256] [-batch 8192] [-workers N]
//	        [-rate 0] [-burst 0] [-retry-after 1s] [-stale-after 15s]
//	        [-trace-sample 0.01] [-trace-ring 256] [-slow-trace 50ms]
//	        [-diag-dir DIR] [-metrics-addr ADDR]
//	        [-adapt] [-drift-window 180] [-rollback-depth 4] [-adapt-seed 1]
//	        [-save-models models.json] [-v]
//
// Endpoints: POST /ingest (perfctr TDS1 wire batches, with optional
// TDX1 trace context and TDP1 measured rails), GET /power?node=,
// GET /fleet, GET /statz, GET /driftz (self-healing adaptation state;
// 404 unless -adapt), GET /healthz, GET /debug/tracez (sampled +
// anomaly traces), and
// /metrics + /debug/pprof via the telemetry registry. -metrics-addr
// serves the observability mux on a second listener that drains with
// the service. SIGINT/SIGTERM trigger a graceful shutdown: intake
// closes, queued batches drain, then the process exits. SIGQUIT dumps
// a diagnostics bundle (traces, flight ring, metrics, goroutines) to
// -diag-dir and keeps running.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"trickledown/internal/adapt"
	"trickledown/internal/core"
	"trickledown/internal/experiments"
	"trickledown/internal/serve"
	"trickledown/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	models := flag.String("models", "", "load a fitted estimator from this JSON file instead of training")
	trainScale := flag.Float64("train-scale", 0.05, "training-run duration multiplier when training (no -models)")
	saveModels := flag.String("save-models", "", "after training, persist the estimator to this JSON file")
	queue := flag.Int("queue", 256, "ingest queue depth in batches (the backpressure bound)")
	batch := flag.Int("batch", 8192, "max samples per ingest request")
	workers := flag.Int("workers", 0, "estimation workers (0 = GOMAXPROCS)")
	rate := flag.Float64("rate", 0, "per-client admission rate in samples/sec (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-client token-bucket burst in samples (0 = derived)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After advertised on 429 responses")
	staleAfter := flag.Duration("stale-after", 15*time.Second, "node staleness horizon for the fleet aggregate")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain the queue on shutdown")
	traceSample := flag.Float64("trace-sample", 0.01, "head-based trace sampling rate in [0,1] for batches without a producer-stamped context")
	traceRing := flag.Int("trace-ring", 256, "traces retained per /debug/tracez view")
	slowTrace := flag.Duration("slow-trace", 50*time.Millisecond, "e2e latency past which a batch is always kept as a slow-outlier trace (negative = off)")
	diagDir := flag.String("diag-dir", "", "write diagnostics bundles here on shedding/quarantine transitions and SIGQUIT (empty = off)")
	metricsAddr := flag.String("metrics-addr", "", "serve the observability mux on a second listener (empty = off; /metrics is also on -addr)")
	adaptOn := flag.Bool("adapt", false, "enable self-healing: drift detection on TDP1-rails batches, guarded refit, hot-swap with rollback")
	driftWindow := flag.Int("drift-window", 180, "adaptation sliding window in observations (refit + shadow evaluation)")
	rollbackDepth := flag.Int("rollback-depth", 4, "previous champions retained for instant rollback")
	adaptSeed := flag.Uint64("adapt-seed", 1, "seed for deterministic swap trace IDs")
	verbose := flag.Bool("v", false, "log per-signal detail")
	flag.Parse()

	est, err := loadOrTrain(*models, *trainScale, *saveModels)
	if err != nil {
		log.Fatal(err)
	}
	if p := est.Provenance(); p != nil {
		log.Printf("model provenance: %s", p)
	} else {
		log.Print("model provenance: unversioned (pre-provenance file)")
	}

	srv, err := serve.New(serve.Config{
		Estimator:       est,
		QueueDepth:      *queue,
		MaxBatch:        *batch,
		Workers:         *workers,
		RatePerClient:   *rate,
		Burst:           *burst,
		RetryAfter:      *retryAfter,
		StaleAfter:      *staleAfter,
		TraceSampleRate: *traceSample,
		TraceRing:       *traceRing,
		SlowTrace:       *slowTrace,
		DiagDir:         *diagDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *adaptOn {
		mgr, err := adapt.New(adapt.Config{
			Champion:      est,
			Window:        *driftWindow,
			RollbackDepth: *rollbackDepth,
			Seed:          *adaptSeed,
			OnEvent: func(ev adapt.Event) {
				log.Printf("adapt %s: %s -> %s (%s) trace=%s", ev.Kind, ev.From, ev.To, ev.Detail, ev.Trace)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.SetAdapter(mgr)
		log.Printf("self-healing enabled window=%d rollback-depth=%d seed=%d",
			*driftWindow, *rollbackDepth, *adaptSeed)
	}
	srv.Start()

	var obs *telemetry.ObsServer
	if *metricsAddr != "" {
		if obs, err = telemetry.Serve(*metricsAddr); err != nil {
			log.Fatal(err)
		}
		log.Printf("observability listening addr=%s", obs.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("listening addr=%s queue=%d batch=%d workers=%d rate=%g",
		ln.Addr(), *queue, *batch, *workers, *rate)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	var got os.Signal
	for got = <-sig; got == syscall.SIGQUIT; got = <-sig {
		// SIGQUIT is the operator's "show me what's happening":
		// dump a diagnostics bundle and keep serving.
		if dir, err := srv.DumpDiagnostics(*diagDir, "sigquit"); err != nil {
			log.Printf("SIGQUIT diagnostics dump failed: %v", err)
		} else {
			log.Printf("SIGQUIT diagnostics bundle: %s", dir)
		}
	}
	log.Printf("signal %s: draining (timeout %s)", got, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	if obs != nil {
		_ = obs.Shutdown(ctx)
	}
	if err := srv.Close(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if *verbose {
		st := srv.Stats()
		log.Printf("final: ingested=%d estimated=%d shed=%d nonfinite=%d nodes=%d",
			st.SamplesIngested, st.SamplesEstimated, st.SamplesShed, st.NonFinite, st.Nodes)
	}
	log.Print("shutdown complete")
}

// loadOrTrain resolves the estimator: from a persisted model file when
// given, otherwise by training on the simulated calibration machine at
// the requested scale (the instrumented-machine role from the paper).
func loadOrTrain(path string, scale float64, savePath string) (*core.Estimator, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open models: %w", err)
		}
		defer f.Close()
		est, err := core.LoadEstimator(f)
		if err != nil {
			return nil, fmt.Errorf("load models %s: %w", path, err)
		}
		log.Printf("loaded estimator from %s", path)
		return est, nil
	}
	log.Printf("training estimator (scale %g)", scale)
	start := time.Now()
	est, err := experiments.NewRunner(experiments.Options{
		Seed: 100, TrainSeed: 10, Scale: scale,
	}).Estimator()
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	log.Printf("trained in %s", time.Since(start).Round(time.Millisecond))
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return nil, fmt.Errorf("create %s: %w", savePath, err)
		}
		defer f.Close()
		if err := est.Save(f); err != nil {
			return nil, fmt.Errorf("save models: %w", err)
		}
		log.Printf("saved models to %s", savePath)
	}
	return est, nil
}
