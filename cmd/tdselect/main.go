// Command tdselect mechanizes the paper's Section 3.3.1 model-selection
// procedure: train every candidate event set for a subsystem on its
// training workload, score each on held-out workloads by Equation 6
// error, and print the ranking that justifies the published choices
// (Eq. 3 for memory, Eq. 4 for disk, Eq. 5 for I/O).
//
// Usage:
//
//	tdselect [-subsystem memory|disk|io|all] [-scale 0.5] [-seed 100] [-trainseed 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/machine"
)

// selection describes one subsystem's candidate sweep.
type selection struct {
	name     string
	specs    []core.ModelSpec
	train    string
	trainSec float64
	holdouts []holdout
}

type holdout struct {
	workload string
	seconds  float64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdselect: ")
	subsystem := flag.String("subsystem", "all", "memory, disk, io or all")
	scale := flag.Float64("scale", 0.5, "duration multiplier")
	seed := flag.Uint64("seed", 100, "holdout seed")
	trainSeed := flag.Uint64("trainseed", 10, "training seed")
	flag.Parse()

	selections := []selection{
		{
			name:  "memory",
			specs: core.MemoryCandidates(),
			train: "mesa", trainSec: 400,
			holdouts: []holdout{{"mcf", 390}, {"lucas", 300}},
		},
		{
			name:  "disk",
			specs: core.DiskCandidates(),
			train: "diskload", trainSec: 300,
			holdouts: []holdout{{"dbt-2", 240}, {"diskload", 300}},
		},
		{
			// Holdouts follow the paper's evaluation set; adding the
			// NIC-driven netload extension turns io-dma vs Eq.5 into a
			// near-tie, since our NIC coalesces interrupts per byte much
			// like the disk's flush chunks.
			name:  "io",
			specs: core.IOCandidates(),
			train: "diskload", trainSec: 300,
			holdouts: []holdout{{"dbt-2", 240}, {"diskload", 300}},
		},
	}

	cache := map[string]*align.Dataset{}
	run := func(name string, seconds float64, seed uint64) *align.Dataset {
		key := fmt.Sprintf("%s/%.0f/%d", name, seconds**scale, seed)
		if ds, ok := cache[key]; ok {
			return ds
		}
		ds, err := machine.RunWorkload(name, seconds**scale+30, seed)
		if err != nil {
			log.Fatal(err)
		}
		cache[key] = ds
		return ds
	}

	ran := false
	for _, sel := range selections {
		if *subsystem != "all" && *subsystem != sel.name {
			continue
		}
		ran = true
		fmt.Printf("== %s: train on %s, hold out", sel.name, sel.train)
		for _, h := range sel.holdouts {
			fmt.Printf(" %s", h.workload)
		}
		fmt.Println(" ==")
		train := run(sel.train, sel.trainSec, *trainSeed)
		hds := make([]*align.Dataset, 0, len(sel.holdouts))
		for _, h := range sel.holdouts {
			hds = append(hds, run(h.workload, h.seconds, *seed))
		}
		best, ranking, err := core.SelectModel(sel.specs, train, hds...)
		if err != nil {
			log.Fatal(err)
		}
		for i, c := range ranking {
			marker := "  "
			if c.Model != nil && c.Model.Spec.Name == best.Spec.Name {
				marker = "->"
			}
			fmt.Printf(" %s %d. %s\n", marker, i+1, c)
		}
		fmt.Printf("selected: %s\n\n", best)
	}
	if !ran {
		log.Fatalf("unknown -subsystem %q", *subsystem)
	}
}
