// Command tdreport runs every experiment and writes EXPERIMENTS.md: the
// paper-vs-measured record for all four tables, the five model-trace
// figures, the Figure 4 sweep, the fitted equations and the extension
// studies. The generation itself lives in internal/report.
//
// Usage:
//
//	tdreport [-scale 1.0] [-o EXPERIMENTS.md]
package main

import (
	"flag"
	"log"
	"os"

	"trickledown/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdreport: ")
	scale := flag.Float64("scale", 1.0, "duration multiplier for every run")
	out := flag.String("o", "EXPERIMENTS.md", "output file")
	flag.Parse()

	opt := report.DefaultOptions()
	opt.Scale = *scale
	g := report.NewGenerator(opt)
	g.Progress = func(section string) { log.Printf("done: %s", section) }

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Generate(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
