module trickledown

go 1.22
