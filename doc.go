// Package trickledown reproduces Bircher & John, "Complete System Power
// Estimation: A Trickle-Down Approach Based on Performance Events"
// (ISPASS 2007): five regression models driven only by microprocessor
// performance events that estimate the power of a server's CPU, chipset,
// memory, I/O and disk subsystems.
//
// The library lives under internal/: the paper's contribution is
// internal/core (metrics, model forms Eq. 1-5, training, validation, the
// bundled Estimator); everything the paper's evaluation depends on is
// built as a substrate (simulated SMP server, DRAM, disks, OS,
// sense-resistor DAQ, perfctr sampler); internal/experiments regenerates
// every table and figure. See README.md for the map and EXPERIMENTS.md
// for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate each table and figure
// (BenchmarkTable1..4, BenchmarkFigure2..7) and quantify the paper's
// model-selection choices as ablations.
package trickledown
