// Diurnal: a day in the life of a small fleet, closed-loop. Eight
// nodes run the same workload under a two-period diurnal envelope
// (a 240 s "day" plus a short harmonic, starting at the morning peak).
// Each 20 s interval the controller reads per-node draws through the
// estimator's per-interval window mean — no power sensors anywhere —
// and actuates with hysteresis: when fleet utilization falls through
// the low threshold at night, sched.Plan consolidates and powers nodes
// down; when the morning ramp pushes the survivors through the high
// threshold, sched.PlanExpansion wakes nodes from the off-pool before
// they saturate. The run must consolidate below the full fleet at
// night and wake at least one node on the ramp, or it fails.
//
// Both thresholds are calibrated from the hardware's estimated idle
// floor and single-thread busy draw, not hard-coded wattages, so the
// scenario tracks the simulator rather than pinning its numbers.
//
// Everything on stdout is a pure deterministic function of the flags:
// the same command line produces bit-identical output at any -workers
// value. Logs go to stderr.
//
//	go run ./examples/diurnal
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math"
	"os"

	"trickledown/internal/cluster"
	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/sched"
	"trickledown/internal/telemetry"
	"trickledown/internal/workload"
)

const (
	numNodes    = 8
	daySec      = 240.0 // one full diurnal period
	intervalSec = 20.0  // controller decision interval
	intervals   = 12    // one day
)

// dayShape is the two-period envelope: phase +pi/2 starts the run at
// the peak, so the fleet sees peak -> night -> morning ramp in one day.
var dayShape = workload.DiurnalConfig{
	Base: 0.55,
	Periods: []workload.DiurnalPeriod{
		{PeriodSec: daySec, Amp: 0.5, PhaseRad: math.Pi / 2},
		{PeriodSec: daySec / 3, Amp: 0.08},
	},
}

func main() {
	log.SetFlags(0)
	workers := flag.Int("workers", 4, "cluster stepping workers (output is identical at any value)")
	verbose := flag.Bool("v", false, "debug-level logging on stderr")
	flag.Parse()
	telemetry.SetupLogger(*verbose)

	est := train()
	lightCfg := machine.DefaultConfig()
	lightCfg.NumCPUs = 1
	lightCfg.ThreadsPerCPU = 2
	lightCfg.NumDisks = 1

	// Calibrate the controller's inventory numbers through the
	// estimator: the idle floor and the draw of the one busy thread each
	// node actually runs. Thresholds sit inside the dynamic range so
	// they survive simulator retuning.
	idleW := calibrate(est, lightCfg, 901, "idle")
	busyW := calibrate(est, lightCfg, 902, "gcc")
	capW := busyW * 1.05
	dynW := busyW - idleW
	utilHigh := (idleW + 0.75*dynW) / capW
	utilLow := (idleW + 0.35*dynW) / capW

	gcc, err := workload.ByName("gcc")
	check(err)
	dspec, err := workload.DiurnalSpec(gcc, dayShape)
	check(err)

	fleet, err := cluster.New(est)
	check(err)
	fleet.SetWorkers(*workers)
	names := make([]string, numNodes)
	for i := 0; i < numNodes; i++ {
		names[i] = fmt.Sprintf("node-%d", i)
		cfg := lightCfg
		cfg.Seed = uint64(300 + i)
		// One diurnal-driven thread, one free thread of headroom.
		_, err := fleet.AddMixedConfig(names[i], cfg,
			[]machine.Placement{{Thread: 0, Spec: &dspec}})
		check(err)
	}
	fmt.Printf("fleet: %d nodes, idle %.1f W, busy %.1f W, util thresholds %.2f/%.2f\n",
		numNodes, idleW, busyW, utilLow, utilHigh)

	env, err := workload.NewDiurnal(idleInner(), dayShape)
	check(err)

	var off []sched.OffNode
	minPowered, wokeTotal := numNodes, 0
	cooldown := 0
	for i := 1; i <= intervals; i++ {
		check(fleet.Run(intervalSec))
		t := float64(i) * intervalSec

		// Observe: per-interval window means of the powered nodes.
		var on []sched.NodeInfo
		var fleetW float64
		for _, name := range names {
			node, ok := fleet.Lookup(name)
			if !ok {
				log.Fatalf("node %s missing", name)
			}
			if !node.Powered() {
				continue
			}
			w, err := node.WindowMean()
			check(err)
			fleetW += w
			on = append(on, sched.NodeInfo{
				Name: name, Watts: w, IdleWatts: idleW, CapacityWatts: capW,
				UsedThreads: 1, FreeThreads: 1, Healthy: true,
			})
		}
		util := fleetW / (float64(len(on)) * capW)

		// Decide and actuate with hysteresis.
		action := "hold"
		switch {
		case util > utilHigh && len(off) > 0:
			e := sched.PlanExpansion(on, off, sched.ExpandConfig{TargetUtil: utilHigh})
			for _, name := range e.PowerOn {
				check(fleet.SetPowered(name, true))
				wokeTotal++
			}
			off = off[len(e.PowerOn):]
			action = e.Summary()
			cooldown = 2 // woken nodes resume mid-phase; let them settle
		case util < utilLow && cooldown == 0 && len(on) > 2:
			d := sched.Plan(on, sched.Config{
				MigrationCostJ: 500, AmortizeSec: intervalSec, MinNodes: 2,
			})
			for _, a := range d.Actions {
				check(fleet.SetPowered(a.Node, false))
				off = append(off, sched.OffNode{
					Name: a.Node, IdleWatts: idleW, CapacityWatts: capW, FreeThreads: 1,
				})
			}
			action = d.Summary()
		default:
			if cooldown > 0 {
				cooldown--
			}
		}

		powered := numNodes - len(off)
		if powered < minPowered {
			minPowered = powered
		}
		fmt.Printf("t=%3.0fs env=%.2f powered=%d util=%.2f fleet=%6.1fW  %s\n",
			t, env.Envelope(t), powered, util, fleetW, action)
	}

	if minPowered >= numNodes {
		fmt.Fprintln(os.Stderr, "FAIL: the night never consolidated the fleet")
		os.Exit(1)
	}
	if wokeTotal == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: the morning ramp never woke a node")
		os.Exit(1)
	}
	fmt.Printf("day complete: consolidated to %d nodes at night, woke %d on the ramp\n",
		minPowered, wokeTotal)
	fmt.Println("OK")
}

// calibrate runs one workload on a single thread of the node hardware
// and returns the estimator's mean draw.
func calibrate(est *core.Estimator, cfg machine.Config, seed uint64, wl string) float64 {
	c, err := cluster.New(est)
	check(err)
	cfg.Seed = seed
	_, err = c.AddMixedConfig("calib", cfg,
		[]machine.Placement{{Workload: wl, Thread: 0}})
	check(err)
	check(c.Run(intervalSec))
	node, ok := c.Lookup("calib")
	if !ok {
		log.Fatal("calibration node missing")
	}
	w, err := node.EstimatedMean()
	check(err)
	return w
}

// idleInner returns a quiet generator for the reference envelope (the
// Envelope method never calls it).
func idleInner() workload.Generator {
	spec, err := workload.ByName("idle")
	check(err)
	return spec.Make(0, nil)
}

// train fits the estimator once, from the paper's training trio.
func train() *core.Estimator {
	slog.Info("training the fleet's estimator")
	gcc, err := machine.RunWorkload("gcc", 150, 1)
	check(err)
	mcf, err := machine.RunWorkload("mcf", 150, 2)
	check(err)
	dl, err := machine.RunWorkload("diskload", 120, 3)
	check(err)
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	check(err)
	return est
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
