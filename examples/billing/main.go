// Billing: the paper's SMP power-accounting motivation (Section 4.2.1):
// "in the near future it is expected that billing of compute time in
// these environments will take account of power consumed by each
// process... This is particularly challenging in virtual machine
// environments in which multiple customers could be simultaneously
// running applications on a single physical processor."
//
// The demo builds exactly that machine with machine.NewMixed: tenant
// acme owns both threads of processor 0; tenants globex and initech
// *share processor 1 via SMT*; processor 2 runs globex's second job;
// processor 3 is unsold. Only the sum of processor power is measurable,
// but Equation 1 attributes it per processor, and OS per-thread busy
// accounting splits shared processors between tenants
// (Estimator.PerThreadPower). The demo accumulates per-tenant energy
// and prints the bill.
//
//	go run ./examples/billing
package main

import (
	"fmt"
	"log"

	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/power"
)

// tenantOfThread maps each hardware thread to the customer whose job is
// pinned there ("" = unsold capacity, billed to the operator).
var tenantOfThread = [8]string{
	"acme", "acme", // processor 0: acme's two gcc workers
	"globex", "initech", // processor 1: SHARED between two tenants
	"globex", "", // processor 2: globex's java tier + unsold sibling
	"", "", // processor 3: unsold
}

func main() {
	log.SetFlags(0)

	fmt.Println("calibrating models on gcc...")
	train, err := machine.RunWorkload("gcc", 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	var models []*core.Model
	for _, spec := range []core.ModelSpec{
		core.CPUSpec(), core.ChipsetSpec(), core.MemBusSpec(),
		core.DiskSpec(), core.IOSpec(),
	} {
		m, err := core.Train(spec, train)
		if err != nil {
			log.Fatal(err)
		}
		models = append(models, m)
	}
	est, err := core.NewEstimator(models...)
	if err != nil {
		log.Fatal(err)
	}

	// The multi-tenant box.
	cfg := machine.DefaultConfig()
	cfg.Seed = 77
	srv, err := machine.NewMixed(cfg, []machine.Placement{
		{Workload: "gcc", Thread: 0},
		{Workload: "gcc", Thread: 1, StartSec: 20},
		{Workload: "specjbb", Thread: 2},
		{Workload: "dbt-2", Thread: 3},
		{Workload: "specjbb", Thread: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	const runSec = 300
	srv.Run(runSec)
	ds, err := srv.Dataset()
	if err != nil {
		log.Fatal(err)
	}

	energyJ := map[string]float64{}
	var totalEstJ, totalMeasJ float64
	fmt.Println("\nper-thread attribution (every 60s shown; cpu1 is shared by globex+initech):")
	for i := range ds.Rows {
		row := &ds.Rows[i]
		per := est.PerThreadPower(&row.Counters, 2)
		if per == nil {
			log.Fatal("sample lacks OS thread accounting")
		}
		dt := row.Counters.IntervalSec
		for th, w := range per {
			tenant := tenantOfThread[th]
			if tenant == "" {
				tenant = "(unsold)"
			}
			energyJ[tenant] += w * dt
			totalEstJ += w * dt
		}
		totalMeasJ += row.Power[power.SubCPU] * dt
		if i%60 == 0 {
			fmt.Printf("  t=%3.0fs:", row.Counters.TargetSeconds)
			for th := 2; th <= 3; th++ {
				fmt.Printf("  th%d(%s) %5.1fW", th, tenantOfThread[th], per[th])
			}
			fmt.Println()
		}
	}

	fmt.Printf("\nbill for %ds (CPU subsystem energy):\n", runSec)
	const centsPerKWh = 14.0
	for _, tenant := range []string{"acme", "globex", "initech", "(unsold)"} {
		kwh := energyJ[tenant] / 3.6e6
		fmt.Printf("  %-9s %8.1f kJ  (%.5f kWh, %.4f cents)\n",
			tenant, energyJ[tenant]/1000, kwh, kwh*centsPerKWh)
	}
	fmt.Printf("\nattributed total %.1f kJ vs measured rail %.1f kJ (%.2f%% apart)\n",
		totalEstJ/1000, totalMeasJ/1000,
		100*abs(totalEstJ-totalMeasJ)/totalMeasJ)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
