// Thermal: the paper's opening argument made concrete. "Rather than
// relying on relatively slow temperature sensors for observing power
// consumption... performance counters can be used as a proxy" — because
// thermal inertia delays the sensors, counter-based power estimates see
// a thermal emergency forming *before* any thermometer moves.
//
// The demo runs SPECjbb's warehouse ramp. Two watchdogs guard a CPU
// temperature limit:
//
//   - the sensor watchdog trips when the (lagged, quantized) on-board
//     sensor crosses the limit;
//   - the counter watchdog trips when the steady-state temperature
//     implied by the counter-based power estimate crosses the same
//     limit — no thermal information used at all.
//
// The difference between their trip times is the reaction headroom the
// trickle-down models buy.
//
//	go run ./examples/thermal
package main

import (
	"fmt"
	"log"

	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/power"
	"trickledown/internal/thermal"
	"trickledown/internal/workload"
)

const cpuLimitC = 62.0

func main() {
	log.SetFlags(0)

	fmt.Println("training models...")
	gcc, err := machine.RunWorkload("gcc", 180, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 180, 2)
	if err != nil {
		log.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 150, 3)
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run the ramping workload with a thermal model driven by the true
	// rail power (the physical reality both watchdogs are guarding).
	spec, err := workload.ByName("specjbb")
	if err != nil {
		log.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Seed = 21
	srv, err := machine.New(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	th := thermal.New(thermal.DefaultParams())
	srv.OnSlice(func(si machine.SliceInfo) {
		th.Step(0.001, si.Truth)
	})

	// Drive second by second so the watchdogs can react online.
	var counterTrip, sensorTrip, peakTrip float64 = -1, -1, -1
	fmt.Printf("\n%5s %9s %9s %9s %11s\n", "sec", "est P(W)", "die °C", "sensor °C", "pred-SS °C")
	for sec := 1; sec <= 200; sec++ {
		srv.Run(1)
		ds, err := srv.Dataset()
		if err != nil {
			log.Fatal(err)
		}
		if ds.Len() == 0 {
			continue
		}
		row := &ds.Rows[ds.Len()-1]
		estP := est.Estimate(&row.Counters)
		predicted := th.SteadyState(estP)[power.SubCPU]
		die := th.Temps()[power.SubCPU]
		sensor := th.SensorTemps()[power.SubCPU]

		if counterTrip < 0 && predicted > cpuLimitC {
			counterTrip = float64(sec)
		}
		if peakTrip < 0 && die > cpuLimitC {
			peakTrip = float64(sec)
		}
		if sensorTrip < 0 && sensor > cpuLimitC {
			sensorTrip = float64(sec)
		}
		if sec%20 == 0 {
			fmt.Printf("%5d %9.1f %9.1f %9.1f %11.1f\n",
				sec, estP[power.SubCPU], die, sensor, predicted)
		}
	}

	fmt.Printf("\nCPU thermal limit: %.0f °C\n", cpuLimitC)
	report := func(name string, t float64) {
		if t < 0 {
			fmt.Printf("  %-34s never tripped\n", name)
			return
		}
		fmt.Printf("  %-34s t=%3.0f s\n", name, t)
	}
	report("counter-based watchdog (predictive)", counterTrip)
	report("die actually crosses the limit", peakTrip)
	report("sensor-based watchdog (lagged)", sensorTrip)
	if counterTrip > 0 && sensorTrip > counterTrip {
		fmt.Printf("\nthe counter-based watchdog led the sensor by %.0f s —\n", sensorTrip-counterTrip)
		fmt.Println("time a DVFS governor can use to act *before* the silicon is hot.")
	}
}
