// Replay: record a simulated "day" of workloads as WTR1 traces and
// prove the round trip. Each hour one registry workload runs on a small
// machine with a recording tap (internal/wtrace); the trace then goes
// through the full codec (encode -> strict decode) and drives a fresh
// machine, which must reproduce the live run's aligned dataset
// byte-for-byte — replay generators consume no randomness, so the
// ground-truth rails come out identical, not merely close. The replayed
// day is finally streamed into the estimation service (internal/serve)
// as twelve nodes' live feeds, the trace-driven analogue of the
// datacenter example.
//
// Everything on stdout is a pure deterministic function of the flags;
// logs go to stderr.
//
//	go run ./examples/replay
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"time"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/serve"
	"trickledown/internal/telemetry"
	"trickledown/internal/workload"
	"trickledown/internal/wtrace"
)

const hourSec = 10.0 // one simulated "hour" per workload

func main() {
	log.SetFlags(0)
	verbose := flag.Bool("v", false, "debug-level logging on stderr")
	flag.Parse()
	telemetry.SetupLogger(*verbose)

	est := train()
	day := workload.TableOrder() // 12 workloads, one per "hour"

	srv, err := serve.New(serve.Config{Estimator: est, Workers: 2})
	check(err)
	srv.Start()

	fmt.Printf("replaying a %d-hour day (%.0f s per hour) through the WTR1 codec\n", len(day), hourSec)
	total := 0
	for hour, wl := range day {
		node := fmt.Sprintf("hour-%02d", hour)
		ds := recordAndReplay(hour, wl)
		sent, err := srv.IngestDataset(context.Background(), "replayer", node, ds, 256)
		check(err)
		total += sent
	}

	// Drain before reading per-node views; Close stops the workers.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := srv.Stats(); st.SamplesEstimated >= uint64(total) {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("serve drain timed out: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	check(srv.Close(context.Background()))
	fmt.Printf("served %d replayed samples:\n", total)
	for hour, wl := range day {
		node := fmt.Sprintf("hour-%02d", hour)
		np, ok := srv.NodePower(node)
		if !ok {
			log.Fatalf("node %s missing from the service", node)
		}
		fmt.Printf("  %s %-9s %3d samples, last estimate %6.1f W\n",
			node, wl, np.Samples, np.Power["Total"])
	}
	fmt.Println("OK")
}

// recordAndReplay runs one workload's hour live with a recording tap,
// pushes the trace through the codec, replays it on a fresh machine and
// asserts byte-identical ground truth. Returns the replayed dataset.
func recordAndReplay(hour int, wl string) *align.Dataset {
	cfg := machine.DefaultConfig()
	cfg.NumCPUs = 1
	cfg.ThreadsPerCPU = 2
	cfg.NumDisks = 1
	cfg.Seed = uint64(100 + hour)

	spec, err := workload.ByName(wl)
	check(err)
	if spec.Instances > 2 {
		spec.Instances = 2 // the hour machine has two hardware threads
	}
	spec.StaggerSec = 2

	// Live run with the recording tap.
	rec, err := wtrace.NewRecorder(spec.Name, 1/cfg.Slice.Seconds(), spec.Instances)
	check(err)
	rspec, err := wtrace.RecordSpec(spec, rec)
	check(err)
	live, err := machine.New(cfg, rspec)
	check(err)
	live.Run(hourSec)
	liveDS, err := live.Dataset()
	check(err)

	// Full codec round trip: the replay machine sees only the bytes.
	tr, err := rec.Trace()
	check(err)
	data, err := tr.EncodeBytes()
	check(err)
	dec, err := wtrace.DecodeBytes(data)
	check(err)
	fp, err := dec.Fingerprint()
	check(err)

	replaySpec, err := dec.Spec()
	check(err)
	replay, err := machine.New(cfg, replaySpec)
	check(err)
	replay.Run(hourSec)
	replayDS, err := replay.Dataset()
	check(err)

	liveFP := align.Fingerprint(liveDS)
	if got := align.Fingerprint(replayDS); got != liveFP {
		fmt.Fprintf(os.Stderr, "FAIL: hour %02d %s: replay dataset %s != live %s\n", hour, wl, got, liveFP)
		os.Exit(1)
	}
	fmt.Printf("  hour-%02d %-9s trace %s (%d samples, %d bytes), replay == live (%s)\n",
		hour, wl, fp, tr.Header.Samples, len(data), liveFP)
	return replayDS
}

// train fits the estimator once, from the paper's training trio.
func train() *core.Estimator {
	slog.Info("training the estimator")
	gcc, err := machine.RunWorkload("gcc", 150, 1)
	check(err)
	mcf, err := machine.RunWorkload("mcf", 150, 2)
	check(err)
	dl, err := machine.RunWorkload("diskload", 120, 3)
	check(err)
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	check(err)
	return est
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
