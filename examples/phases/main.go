// Phases: the paper's phase-detection context (Section 2.4, after Isci):
// counter-based power estimates expose program power phases that a
// control-flow metric cannot see, and phase boundaries are where dynamic
// adaptation (DVFS, consolidation) should act.
//
// SPECjbb ramps through warehouse counts, producing a staircase of
// system power. The demo estimates total power per second from counters
// only, segments the series with internal/phase's online change
// detector, and prints each phase with its mean power and the subsystem
// that moved most — ending with the adaptation hint a DVFS governor
// would consume.
//
//	go run ./examples/phases
package main

import (
	"fmt"
	"log"

	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/phase"
	"trickledown/internal/power"
	"trickledown/internal/stats"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training models...")
	gcc, err := machine.RunWorkload("gcc", 180, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 180, 2)
	if err != nil {
		log.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 150, 3)
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running specjbb and watching counter-estimated power...")
	ds, err := machine.RunWorkload("specjbb", 220, 9)
	if err != nil {
		log.Fatal(err)
	}

	// Estimate the per-second series and total power for summary stats.
	series := make([]power.Reading, ds.Len())
	totals := make([]float64, ds.Len())
	for i := range ds.Rows {
		series[i] = est.Estimate(&ds.Rows[i].Counters)
		totals[i] = series[i].Total()
	}

	const threshold = 12.0
	phases, err := phase.Detect(series, threshold)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndetected %d power phases (threshold %.0f W):\n", len(phases), threshold)
	for i, p := range phases {
		driver := "startup"
		delta := 0.0
		if i > 0 {
			s, d := phase.DominantShift(phases[i-1], p)
			driver = s.String()
			delta = p.Mean - phases[i-1].Mean
			_ = d
		}
		fmt.Printf("  phase %2d  [%3d..%3ds]  mean %6.1f W  Δ%+6.1f W  driver: %s\n",
			i+1, p.Start, p.End, p.Mean, delta, driver)
	}

	sum, err := stats.Summarize(totals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npower swing %.1f W (%.1f..%.1f); stddev %.1f W\n",
		sum.Max-sum.Min, sum.Min, sum.Max, sum.StdDev)
	fmt.Println("adaptation hint: low-power phases are DVFS/consolidation opportunities;")
	fmt.Println("counter-based detection sees them before any temperature sensor would.")
}
