// Governor: closed-loop power capping from counters alone — the paper's
// dynamic-adaptation context (Section 2.3, after Kotla's
// instruction-throttling work). A governor polls the trickle-down power
// estimate once per second and adjusts OS-level instruction throttling
// to keep total system power under a cap. It never sees a power sensor;
// the loop closes through the models because throttling shows up in the
// very counter (halted cycles) that Equation 1 consumes.
//
// The demo runs SPECjbb's ramp twice — uncapped, then capped — and
// verifies compliance against the measured rails the governor never saw.
//
//	go run ./examples/governor
package main

import (
	"fmt"
	"log"

	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/workload"
)

const (
	capWatts = 215.0
	runSec   = 200
)

func main() {
	log.SetFlags(0)

	fmt.Println("training models...")
	gcc, err := machine.RunWorkload("gcc", 180, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 180, 2)
	if err != nil {
		log.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 150, 3)
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		log.Fatal(err)
	}

	uncapped := run(est, false)
	capped := run(est, true)

	fmt.Printf("\n%-28s %10s %10s\n", "", "uncapped", "capped")
	fmt.Printf("%-28s %10.1f %10.1f\n", "peak measured power (W)", uncapped.peak, capped.peak)
	fmt.Printf("%-28s %10.1f %10.1f\n", "mean measured power (W)", uncapped.mean, capped.mean)
	fmt.Printf("%-28s %9.1f%% %9.1f%%\n", "seconds over the cap", uncapped.overPct, capped.overPct)
	fmt.Printf("%-28s %10.2e %10.2e\n", "work done (uops)", uncapped.uops, capped.uops)
	fmt.Printf("%-28s %10s %10.1f%%\n", "performance retained", "-", 100*capped.uops/uncapped.uops)
	if capped.overPct > 15 {
		fmt.Println("\nWARNING: governor failed to hold the cap")
	} else {
		fmt.Printf("\nthe governor held the %.0f W cap using counters only, trading\n", capWatts)
		fmt.Printf("%.0f%% of throughput for %.0f W of peak power.\n",
			100*(1-capped.uops/uncapped.uops), uncapped.peak-capped.peak)
	}
}

type result struct {
	peak, mean, overPct, uops float64
}

func run(est *core.Estimator, capped bool) result {
	spec, err := workload.ByName("specjbb")
	if err != nil {
		log.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Seed = 33
	srv, err := machine.New(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	label := "uncapped"
	if capped {
		label = fmt.Sprintf("capped at %.0f W", capWatts)
	}
	fmt.Printf("\nrunning specjbb %s...\n", label)

	throttle := 0.0
	var res result
	n := 0.0
	seen := 0
	for sec := 1; sec <= runSec; sec++ {
		srv.Run(1)
		ds, err := srv.Dataset()
		if err != nil {
			log.Fatal(err)
		}
		if ds.Len() <= seen {
			continue
		}
		row := &ds.Rows[ds.Len()-1]
		seen = ds.Len()

		// Governor: proportional control on the counter-based estimate.
		if capped {
			estTotal := est.Estimate(&row.Counters).Total()
			gap := estTotal - capWatts
			// Asymmetric proportional control: clamp down hard on
			// violations, release slowly.
			if gap > 0 {
				throttle += 0.012 * gap
			} else {
				throttle += 0.002 * gap
			}
			if throttle < 0 {
				throttle = 0
			}
			if throttle > 0.9 {
				throttle = 0.9
			}
			srv.SetThrottleAll(throttle)
		}

		// Bookkeeping against ground truth (the governor never reads it).
		meas := row.Power.Total()
		if meas > res.peak {
			res.peak = meas
		}
		res.mean += meas
		if meas > capWatts+2 { // 2 W compliance band
			res.overPct++
		}
		for _, c := range row.Counters.CPUs {
			res.uops += float64(c.FetchedUops)
		}
		n++
		if sec%40 == 0 {
			fmt.Printf("  t=%3ds measured %6.1f W throttle %4.1f%%\n", sec, meas, 100*throttle)
		}
	}
	res.mean /= n
	res.overPct = 100 * res.overPct / n
	return res
}
