// Drift: the self-healing drill. A frozen trickle-down estimator is
// only as good as the counter→power relationship it was fit on; when
// the workload mix shifts underneath it, its Eq. 6 error quietly
// breaches the paper's 9% bound. This demo runs that failure and its
// remedy side by side:
//
//  1. train the five-subsystem estimator on the calibration workloads,
//  2. stream a live mixed run (gcc, mcf and diskload interleaved, so
//     every subsystem design keeps variance for the online refit) with
//     measured rails, mutating the counter mix mid-run with a seeded
//     faults.WorkloadDrift injection,
//  3. feed the stream to internal/adapt's manager, which detects the
//     drift, refits a challenger online, and hot-swaps it through the
//     shadow gate — then score the frozen and adaptive estimators on
//     the drifted tail.
//
// The run is deterministic: fixed seeds everywhere, so stdout is
// byte-identical across repeats (CI diffs two runs). The process exits
// non-zero if any mode's invariant fails, so the drill is its own gate.
//
//	go run ./examples/drift                        # frozen breaches, adaptive holds
//	go run ./examples/drift -force-bad-challenger  # negative control: gate rejects
//	go run ./examples/drift -rollback-drill        # post-swap alarm reverts champion
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"trickledown/internal/adapt"
	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/faults"
	"trickledown/internal/machine"
	"trickledown/internal/power"
	"trickledown/internal/tracez"
	"trickledown/internal/validate"
)

const (
	driftStart = 150.0 // seconds into the live stream
	driftMag   = 0.45  // workload-mix drift fraction
	liveSecs   = 140   // per interleaved workload (three of them)
	bound      = validate.PaperBoundPct
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("drift: ")
	badChallenger := flag.Bool("force-bad-challenger", false,
		"corrupt every challenger before the shadow gate (negative control: nothing may swap)")
	rollbackDrill := flag.Bool("rollback-drill", false,
		"hit the freshly swapped champion with a second, violent drift inside its guard window")
	diagDir := flag.String("diag-dir", "", "dump a diagnostics bundle (flight ring + metrics) here at the end")
	flag.Parse()

	frozen := train()
	fmt.Printf("trained champion %s\n", frozen.Provenance().Version)

	live := liveStream()
	injectDrift(live, driftStart, driftMag, 7)
	fmt.Printf("live stream: gcc+mcf+diskload interleaved, %d samples, workload-mix drift mag=%.2f from t=%.0fs\n",
		live.Len(), driftMag, driftStart)

	var events []adapt.Event
	cfg := adapt.Config{
		Champion:        frozen,
		Window:          90,
		MinFill:         45,
		GuardWindow:     45,
		Cooldown:        20,
		PhaseThresholdW: 500, // the drill streams one workload; no phase gating
		PhaseSettle:     3,
		Seed:            21,
		OnEvent:         func(ev adapt.Event) { events = append(events, ev) },
	}
	if *badChallenger {
		cfg.ChallengerHook = corruptChallenger
		fmt.Println("negative control: every challenger is corrupted before the gate")
	}
	mgr, err := adapt.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	nonFinite, swapObs, rollbackObs := stream(mgr, live, &events, *rollbackDrill)

	for _, ev := range events {
		fmt.Printf("event %-8s %s -> %s  err=%.2f%%  trace=%s\n",
			ev.Kind, ev.From, ev.To, ev.WindowErrPct, ev.Trace)
	}
	st := mgr.Status()
	fmt.Printf("status: swaps=%d rollbacks=%d retrains=%d rejected=%d alarms=%d quarantined=%d\n",
		st.Swaps, st.Rollbacks, st.Retrains, st.Rejected, st.Alarms, st.Quarantined)
	fmt.Printf("estimates: %d non-finite during the whole drill\n", nonFinite)

	fail := false
	if nonFinite != 0 {
		fmt.Println("FAIL: service emitted non-finite estimates")
		fail = true
	}

	switch {
	case *rollbackDrill:
		fail = checkRollback(st, swapObs, rollbackObs, cfg.Window) || fail
	case *badChallenger:
		fail = checkNegativeControl(st, mgr, frozen) || fail
	default:
		fail = checkAdaptive(st, mgr, frozen, live) || fail
	}

	if *diagDir != "" {
		// The bundle path embeds a timestamp, so it goes to stderr — stdout
		// stays byte-identical across repeats.
		rec := tracez.NewRecorder(tracez.Config{})
		if dir, err := tracez.DumpBundle(*diagDir, "drift-drill", rec, tracez.Flight()); err != nil {
			log.Printf("diagnostics bundle failed: %v", err)
		} else {
			log.Printf("diagnostics bundle: %s", dir)
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("PASS")
}

// train fits the production estimator on the calibration workloads and
// stamps versioned provenance, exactly as the offline pipeline does.
func train() *core.Estimator {
	gcc, err := machine.RunWorkload("gcc", 180, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 180, 2)
	if err != nil {
		log.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 150, 3)
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		log.Fatal(err)
	}
	all := align.Concat(gcc, mcf, dl)
	fp := validate.Fingerprint(all)
	est.SetProvenance(&core.Provenance{
		SchemaVersion: core.ProvenanceSchemaVersion,
		Version:       "train-" + fp,
		Fingerprint:   fp,
		Envelopes:     core.ComputeEnvelopes(all),
		Reason:        "offline-train",
	})
	return est
}

// liveStream interleaves fresh gcc, mcf and diskload runs sample by
// sample — a node hosting mixed work. The blend matters: a single
// workload leaves some subsystem designs without variance, and the
// online refit (like any OLS) needs every term excited.
func liveStream() *align.Dataset {
	g, err := machine.RunWorkload("gcc", liveSecs, 42)
	if err != nil {
		log.Fatal(err)
	}
	m, err := machine.RunWorkload("mcf", liveSecs, 43)
	if err != nil {
		log.Fatal(err)
	}
	d, err := machine.RunWorkload("diskload", liveSecs, 44)
	if err != nil {
		log.Fatal(err)
	}
	var rows []align.Row
	for i := 0; ; i++ {
		any := false
		for _, ds := range []*align.Dataset{g, m, d} {
			if i < ds.Len() {
				rows = append(rows, ds.Rows[i])
				any = true
			}
		}
		if !any {
			break
		}
	}
	// Restamp the clock so the drift ramp sees one monotone timeline.
	for i := range rows {
		rows[i].Counters.TargetSeconds = float64(i + 1)
	}
	return &align.Dataset{Rows: rows}
}

// injectDrift remixes the dataset's counters in place from start
// seconds on: the measured rails stay what the machine really drew,
// but the counters no longer mean what they meant at training time.
func injectDrift(ds *align.Dataset, start, mag float64, seed uint64) {
	plan := faults.Plan{Seed: seed, Specs: []faults.Spec{
		{Kind: faults.WorkloadDrift, CPU: -1, Start: start, Magnitude: mag},
	}}
	if err := plan.Validate(); err != nil {
		log.Fatal(err)
	}
	in := plan.Injector("")
	for i := range ds.Rows {
		s := &ds.Rows[i].Counters
		for c := range s.CPUs {
			in.PerturbCounts(s.TargetSeconds, c, &s.CPUs[c])
		}
	}
}

// stream feeds the live rows to the manager one at a time (the drills'
// determinism contract), counting non-finite champion estimates. In the
// rollback drill, a second violent drift starts right after the first
// swap; streaming stops once the rollback lands (or the guard expires).
func stream(mgr *adapt.Manager, live *align.Dataset, events *[]adapt.Event, rollback bool) (nonFinite int, swapObs, rollbackObs int) {
	swapObs, rollbackObs = -1, -1
	var second *faults.Injector
	for i := range live.Rows {
		row := &live.Rows[i]
		if second != nil {
			s := &row.Counters
			for c := range s.CPUs {
				second.PerturbCounts(s.TargetSeconds, c, &s.CPUs[c])
			}
		}
		mgr.Observe(&row.Counters, row.Power)
		r := mgr.Champion().Estimate(&row.Counters)
		for _, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				nonFinite++
				break
			}
		}
		if len(*events) > 0 && (*events)[0].Kind == "swap" && swapObs < 0 {
			swapObs = i
			if rollback {
				// Remix hard on top of the already-drifted counters, with no
				// ramp margin: the new champion must alarm inside its guard
				// window and the manager must revert, not chase a retrain.
				plan := faults.Plan{Seed: 99, Specs: []faults.Spec{
					{Kind: faults.WorkloadDrift, CPU: -1, Start: row.Counters.TargetSeconds - 100, Magnitude: 0.9},
				}}
				second = plan.Injector("")
			}
		}
		for _, ev := range *events {
			if ev.Kind == "rollback" && rollbackObs < 0 {
				rollbackObs = i
			}
		}
		if rollback && rollbackObs >= 0 {
			break
		}
	}
	return nonFinite, swapObs, rollbackObs
}

// corruptChallenger negates the CPU model's activity response — the
// exact pathology the metamorphic shadow gate exists to catch.
func corruptChallenger(c *core.Estimator) *core.Estimator {
	bad := &core.Model{Spec: core.CPUSpec(), Coef: []float64{40, -26, -4}}
	est, err := core.NewEstimator(bad,
		c.Model(power.SubChipset), c.Model(power.SubMemory),
		c.Model(power.SubIO), c.Model(power.SubDisk))
	if err != nil {
		log.Fatal(err)
	}
	est.SetProvenance(c.Provenance())
	return est
}

// tailError scores an estimator's Eq. 6 mean error over the drifted
// tail of the stream (the last n rows, past drift ramp and swap).
func tailError(est *core.Estimator, live *align.Dataset, n int) float64 {
	if n > live.Len() {
		n = live.Len()
	}
	var sum float64
	for i := live.Len() - n; i < live.Len(); i++ {
		row := &live.Rows[i]
		truth := row.Power.Total()
		sum += math.Abs(est.Estimate(&row.Counters).Total()-truth) / truth * 100
	}
	return sum / float64(n)
}

// checkAdaptive is the headline invariant: over the drifted tail the
// frozen estimator breaches the paper bound, the adaptive one holds.
func checkAdaptive(st adapt.Status, mgr *adapt.Manager, frozen *core.Estimator, live *align.Dataset) bool {
	const tail = 120
	frozenErr := tailError(frozen, live, tail)
	adaptiveErr := tailError(mgr.Champion(), live, tail)
	fmt.Printf("drifted tail (%d samples): frozen err %.2f%%, adaptive err %.2f%% (bound %.1f%%)\n",
		tail, frozenErr, adaptiveErr, bound)
	fail := false
	if st.Swaps == 0 {
		fmt.Println("FAIL: drift never produced a swap")
		fail = true
	}
	if frozenErr <= bound {
		fmt.Println("FAIL: frozen estimator did not breach the bound (drill too gentle)")
		fail = true
	} else {
		fmt.Printf("frozen estimator BREACHES the %.1f%% bound\n", bound)
	}
	if adaptiveErr >= bound {
		fmt.Println("FAIL: adaptive estimator breached the bound")
		fail = true
	} else {
		fmt.Printf("adaptive estimator holds under the %.1f%% bound\n", bound)
	}
	p := mgr.Champion().Provenance()
	if p == nil || p.Reason != "drift-refit" || p.Parent != frozen.Provenance().Version {
		fmt.Println("FAIL: promoted champion lacks a drift-refit provenance chain")
		fail = true
	}
	return fail
}

// checkNegativeControl: with every challenger corrupted, the gate must
// reject them all and the frozen champion must keep serving.
func checkNegativeControl(st adapt.Status, mgr *adapt.Manager, frozen *core.Estimator) bool {
	fail := false
	if st.Swaps != 0 {
		fmt.Println("FAIL: a corrupted challenger swapped in")
		fail = true
	}
	if st.Rejected == 0 {
		fmt.Println("FAIL: the shadow gate was never exercised")
		fail = true
	}
	if mgr.Champion() != frozen {
		fmt.Println("FAIL: champion changed despite rejections")
		fail = true
	}
	if !fail {
		fmt.Printf("shadow gate rejected all %d corrupted challengers; champion unchanged\n", st.Rejected)
	}
	return fail
}

// checkRollback: the post-swap alarm must revert to the prior champion
// within one evaluation window of the swap.
func checkRollback(st adapt.Status, swapObs, rollbackObs, window int) bool {
	fail := false
	if st.Swaps == 0 || swapObs < 0 {
		fmt.Println("FAIL: no swap to roll back from")
		fail = true
	}
	if st.Rollbacks == 0 || rollbackObs < 0 {
		fmt.Println("FAIL: violent post-swap drift never rolled back")
		fail = true
	} else if rollbackObs-swapObs > window {
		fmt.Printf("FAIL: rollback took %d observations (> window %d)\n", rollbackObs-swapObs, window)
		fail = true
	} else {
		fmt.Printf("rollback landed %d observations after the swap (window %d)\n", rollbackObs-swapObs, window)
	}
	return fail
}
