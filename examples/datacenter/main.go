// Datacenter: the paper's ensemble-management motivation (Section 1 and
// the Rajamani/Ranganathan citations), built on internal/cluster. A rack
// of simulated servers runs heterogeneous workloads; a manager that has
// NO power sensors estimates each node's draw from performance counters,
// checks the rack against a power budget, plans which nodes to
// consolidate away, and then physically verifies the plan by
// co-scheduling the evicted work onto a surviving node
// (machine.NewMixed) and measuring the combined box.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"trickledown/internal/cluster"
	"trickledown/internal/core"
	"trickledown/internal/machine"
)

const rackBudgetWatts = 800

func main() {
	log.SetFlags(0)

	// Train the estimator once; the same model file ships to every node
	// ("since the tool utilizes existing microprocessor performance
	// counters, the cost of implementation is small").
	fmt.Println("training the fleet's estimator...")
	gcc, err := machine.RunWorkload("gcc", 180, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 180, 2)
	if err != nil {
		log.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 150, 3)
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The rack: a transaction node, two batch nodes, a Java middle tier,
	// a storage node and an idle spare.
	rack, err := cluster.New(est)
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range []struct{ name, wl string }{
		{"db01", "dbt-2"}, {"hpc01", "mgrid"}, {"hpc02", "wupwise"},
		{"app01", "specjbb"}, {"store01", "diskload"}, {"spare01", "idle"},
	} {
		if _, err := rack.AddHomogeneous(n.name, n.wl, uint64(100+i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nrack of %d nodes, budget %d W; observing 90s of counters per node\n\n",
		len(rack.Nodes()), rackBudgetWatts)
	if err := rack.Run(90); err != nil {
		log.Fatal(err)
	}

	snap, total, err := rack.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s %12s %12s %8s\n", "node", "est (W)", "meas (W)", "err")
	for i, e := range snap {
		meas, err := rack.Nodes()[i].MeasuredMean()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %12.1f %12.1f %7.2f%%\n",
			e.Name, e.Watts, meas, 100*abs(e.Watts-meas)/meas)
	}
	fmt.Printf("%-9s %12.1f\n\n", "rack", total)

	acc, err := rack.VerifyAccuracy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensorless accuracy across the rack: %.2f%%\n\n", acc)

	// Plan against the budget.
	plan := cluster.PlanConsolidation(snap, rackBudgetWatts)
	if len(plan.Evict) == 0 {
		fmt.Printf("estimated rack draw %.0f W is within the %d W budget; no action\n",
			total, rackBudgetWatts)
		return
	}
	fmt.Printf("estimated rack draw %.0f W exceeds the %d W budget\n", total, rackBudgetWatts)
	for _, name := range plan.Evict {
		fmt.Printf("  -> consolidate %s onto the remaining nodes and power it down\n", name)
	}
	fmt.Printf("projected draw after consolidation: %.0f W (fits: %v)\n\n", plan.Projected, plan.Fits)

	// Physically verify: co-schedule the evicted dbt-2 workers onto the
	// Java node and measure the combined box.
	fmt.Println("verifying: co-scheduling dbt-2 onto app01 and measuring the combined node...")
	verify, err := cluster.New(est)
	if err != nil {
		log.Fatal(err)
	}
	combined, err := verify.AddMixed("app01+db01", 500, []machine.Placement{
		{Workload: "specjbb", Thread: 0},
		{Workload: "specjbb", Thread: 1},
		{Workload: "specjbb", Thread: 2},
		{Workload: "specjbb", Thread: 3},
		{Workload: "dbt-2", Thread: 4},
		{Workload: "dbt-2", Thread: 5},
		{Workload: "dbt-2", Thread: 6},
		{Workload: "dbt-2", Thread: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := verify.Run(90); err != nil {
		log.Fatal(err)
	}
	combEst, err := combined.EstimatedMean()
	if err != nil {
		log.Fatal(err)
	}
	combMeas, err := combined.MeasuredMean()
	if err != nil {
		log.Fatal(err)
	}
	separate := watts(snap, "app01") + watts(snap, "db01")
	fmt.Printf("  consolidated node: estimated %.0f W, measured %.0f W\n", combEst, combMeas)
	fmt.Printf("  the two separate nodes drew %.0f W — consolidation nets %.0f W (%.0f%%)\n",
		separate, separate-combMeas, 100*(separate-combMeas)/separate)
}

// watts finds a node's estimate in a snapshot.
func watts(snap []cluster.Estimate, name string) float64 {
	for _, e := range snap {
		if e.Name == name {
			return e.Watts
		}
	}
	return 0
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
