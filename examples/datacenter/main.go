// Datacenter: the paper's ensemble-management motivation (Section 1 and
// the Rajamani/Ranganathan citations), built on internal/cluster. A rack
// of simulated servers runs heterogeneous workloads; a manager that has
// NO power sensors estimates each node's draw from performance counters
// (stepping all nodes in parallel on the cluster's worker pool), checks
// the rack against a power budget, plans which nodes to consolidate away
// — largest consumers first, so the budget is met with the fewest
// migrations — and then physically verifies the plan by co-scheduling an
// evicted node's workload onto a surviving node (machine.NewMixed) and
// measuring the combined box.
//
//	go run ./examples/datacenter
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"runtime"
	"time"

	"trickledown/internal/cluster"
	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/telemetry"
)

const rackBudgetWatts = 800

// rackNodes is the fleet: a transaction node, two batch nodes, a Java
// middle tier, a storage node and an idle spare.
var rackNodes = []struct{ name, wl string }{
	{"db01", "dbt-2"}, {"hpc01", "mgrid"}, {"hpc02", "wupwise"},
	{"app01", "specjbb"}, {"store01", "diskload"}, {"spare01", "idle"},
}

func main() {
	log.SetFlags(0)
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	verbose := flag.Bool("v", false, "debug-level logging with periodic progress lines")
	flag.Parse()
	logger := telemetry.SetupLogger(*verbose)
	if *metricsAddr != "" {
		obs, err := telemetry.Serve(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("telemetry listening", "addr", obs.Addr().String())
	}
	if *verbose {
		defer telemetry.StartProgress(logger, 2*time.Second)()
	}

	// Train the estimator once; the same model file ships to every node
	// ("since the tool utilizes existing microprocessor performance
	// counters, the cost of implementation is small").
	slog.Info("training the fleet's estimator")
	gcc, err := machine.RunWorkload("gcc", 180, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 180, 2)
	if err != nil {
		log.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 150, 3)
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		log.Fatal(err)
	}

	rack, err := cluster.New(est)
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range rackNodes {
		if _, err := rack.AddHomogeneous(n.name, n.wl, uint64(100+i)); err != nil {
			log.Fatal(err)
		}
	}
	slog.Info("observing rack", "nodes", rack.NumNodes(), "budget_watts", rackBudgetWatts,
		"observe_seconds", 90, "workers", rack.Workers(), "cpus", runtime.GOMAXPROCS(0))
	// RunContext steps every node in parallel on the worker pool; an
	// operator's monitoring loop would pass a real deadline or shutdown
	// context here.
	if err := rack.RunContext(context.Background(), 90); err != nil {
		log.Fatal(err)
	}

	snap, total, err := rack.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s %12s %12s %8s\n", "node", "est (W)", "meas (W)", "err")
	for _, e := range snap {
		n, ok := rack.Lookup(e.Name)
		if !ok {
			log.Fatalf("snapshot names unknown node %s", e.Name)
		}
		meas, err := n.MeasuredMean()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %12.1f %12.1f %7.2f%%\n",
			e.Name, e.Watts, meas, 100*abs(e.Watts-meas)/meas)
	}
	fmt.Printf("%-9s %12.1f\n\n", "rack", total)

	acc, err := rack.VerifyAccuracy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensorless accuracy across the rack: %.2f%%\n\n", acc)

	// Plan against the budget: largest consumers are powered down first,
	// so the fewest workloads have to move.
	plan := cluster.PlanConsolidation(snap, rackBudgetWatts)
	if len(plan.Evict) == 0 {
		fmt.Printf("estimated rack draw %.0f W is within the %d W budget; no action\n",
			total, rackBudgetWatts)
		return
	}
	fmt.Printf("estimated rack draw %.0f W exceeds the %d W budget\n", total, rackBudgetWatts)
	for _, name := range plan.Evict {
		fmt.Printf("  -> consolidate %s onto the remaining nodes and power it down\n", name)
	}
	fmt.Printf("projected draw after consolidation: %.0f W (fits: %v)\n\n", plan.Projected, plan.Fits)

	// Physically verify the first eviction: co-schedule its workload
	// next to the busiest survivor's and measure the combined box.
	evicted := plan.Evict[0]
	host := busiestSurvivor(snap, plan.Evict)
	slog.Info("verifying consolidation", "evicted", evicted, "host", host)
	placements := make([]machine.Placement, 0, 8)
	for t := 0; t < 4; t++ {
		placements = append(placements, machine.Placement{Workload: workloadOf(host), Thread: t})
	}
	for t := 4; t < 8; t++ {
		placements = append(placements, machine.Placement{Workload: workloadOf(evicted), Thread: t})
	}
	verify, err := cluster.New(est)
	if err != nil {
		log.Fatal(err)
	}
	combined, err := verify.AddMixed(host+"+"+evicted, 500, placements)
	if err != nil {
		log.Fatal(err)
	}
	if err := verify.Run(90); err != nil {
		log.Fatal(err)
	}
	combEst, err := combined.EstimatedMean()
	if err != nil {
		log.Fatal(err)
	}
	combMeas, err := combined.MeasuredMean()
	if err != nil {
		log.Fatal(err)
	}
	separate := watts(snap, host) + watts(snap, evicted)
	fmt.Printf("  consolidated node: estimated %.0f W, measured %.0f W\n", combEst, combMeas)
	fmt.Printf("  the two separate nodes drew %.0f W — consolidation nets %.0f W (%.0f%%)\n",
		separate, separate-combMeas, 100*(separate-combMeas)/separate)
}

// busiestSurvivor returns the highest-draw node not named in evict.
func busiestSurvivor(snap []cluster.Estimate, evict []string) string {
	gone := map[string]bool{}
	for _, name := range evict {
		gone[name] = true
	}
	best, bestW := "", -1.0
	for _, e := range snap {
		if !gone[e.Name] && e.Watts > bestW {
			best, bestW = e.Name, e.Watts
		}
	}
	return best
}

// workloadOf maps a rack node name back to its workload.
func workloadOf(name string) string {
	for _, n := range rackNodes {
		if n.name == name {
			return n.wl
		}
	}
	return "idle"
}

// watts finds a node's estimate in a snapshot.
func watts(snap []cluster.Estimate, name string) float64 {
	for _, e := range snap {
		if e.Name == name {
			return e.Watts
		}
	}
	return 0
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
