// Quickstart: build the simulated server, run a workload, train the
// paper's trickle-down models, and estimate complete system power from
// performance counters alone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/power"
	"trickledown/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Gather training traces: gcc for the CPU model (Eq. 1), mcf for
	// the memory bus model (Eq. 3), DiskLoad for disk and I/O (Eq. 4/5).
	fmt.Println("collecting training traces...")
	gcc, err := machine.RunWorkload("gcc", 180, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 180, 2)
	if err != nil {
		log.Fatal(err)
	}
	diskload, err := machine.RunWorkload("diskload", 150, 3)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Fit the five subsystem models.
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: diskload, IO: diskload, Chipset: gcc,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfitted models:")
	for _, s := range power.Subsystems() {
		fmt.Println("  ", est.Model(s))
	}

	// 3. Run a different workload and estimate its power without any
	// power sensors — counters only.
	spec, err := workload.ByName("specjbb")
	if err != nil {
		log.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Seed = 42
	srv, err := machine.New(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	srv.Run(90)
	ds, err := srv.Dataset()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nspecjbb, estimated vs measured (W):")
	fmt.Printf("%4s %10s %10s %10s %10s\n", "sec", "CPU est", "CPU meas", "total est", "total meas")
	for i, row := range ds.Rows {
		if i%10 != 0 {
			continue
		}
		e := est.Estimate(&row.Counters)
		fmt.Printf("%4.0f %10.1f %10.1f %10.1f %10.1f\n",
			row.Counters.TargetSeconds,
			e[power.SubCPU], row.Power[power.SubCPU],
			e.Total(), row.Power.Total())
	}

	// 4. Overall accuracy.
	fmt.Println("\naverage error per subsystem (Eq. 6):")
	for _, s := range power.Subsystems() {
		errPct, err := est.Model(s).Validate(ds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %5.2f%%\n", s, errPct)
	}
}
