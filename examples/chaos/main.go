// Chaos: a fault-injection drill for the ensemble manager. A 16-node
// fleet runs under a deterministic chaos plan (internal/faults): two
// nodes crash mid-observation, one node's DAQ memory channel drops out
// and ten percent of its sync pulses vanish. The run must NOT be lost —
// the crashed nodes are quarantined with their cause recorded, the
// flaky node's trace is repaired by the robust merge, and the manager
// still produces a snapshot, an accuracy figure and a consolidation
// plan over the survivors.
//
// The output is greppable for CI smoke checks: one "quarantined=<name>"
// line per failed node and a final "survivors=<n> accuracy=<pct>" line.
//
//	go run ./examples/chaos [-seconds 60] [-chaos-seed 2024]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"time"

	"trickledown/internal/cluster"
	"trickledown/internal/core"
	"trickledown/internal/faults"
	"trickledown/internal/machine"
	"trickledown/internal/pool"
	"trickledown/internal/power"
	"trickledown/internal/telemetry"
)

// fleetWorkloads cycles across the 16 nodes.
var fleetWorkloads = []string{"gcc", "mcf", "mesa", "idle", "dbt-2", "diskload", "specjbb", "mgrid"}

func main() {
	log.SetFlags(0)
	seconds := flag.Float64("seconds", 60, "observation window in simulated seconds")
	chaosSeed := flag.Uint64("chaos-seed", 2024, "seed for the fault schedule")
	verbose := flag.Bool("v", false, "debug-level logging with periodic progress lines")
	flag.Parse()
	logger := telemetry.SetupLogger(*verbose)
	if *verbose {
		defer telemetry.StartProgress(logger, 2*time.Second)()
	}

	slog.Info("training the fleet's estimator")
	gcc, err := machine.RunWorkload("gcc", 180, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcf, err := machine.RunWorkload("mcf", 180, 2)
	if err != nil {
		log.Fatal(err)
	}
	dl, err := machine.RunWorkload("diskload", 150, 3)
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	if err != nil {
		log.Fatal(err)
	}

	fleet, err := cluster.New(est)
	if err != nil {
		log.Fatal(err)
	}
	// One retry with a short backoff: transient failures get a second
	// chance before a node is declared dead.
	fleet.SetRetry(pool.Retry{Attempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond})
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("node%02d", i)
		if _, err := fleet.AddHomogeneous(name, fleetWorkloads[i%len(fleetWorkloads)], uint64(100+i)); err != nil {
			log.Fatal(err)
		}
	}

	// The drill: two crashes plus a flaky sensor chain on a survivor.
	plan := &faults.Plan{Seed: *chaosSeed, Specs: []faults.Spec{
		{Kind: faults.NodeCrash, Node: "node03", Start: *seconds * 0.25},
		{Kind: faults.NodeCrash, Node: "node11", Start: *seconds * 0.60},
		{Kind: faults.DAQDropout, Node: "node05", Channel: power.SubMemory, Start: *seconds * 0.2, Duration: 3},
		{Kind: faults.SyncDrop, Node: "node05", Start: 0, Magnitude: 0.1},
	}}
	attached, err := fleet.InjectFaults(plan)
	if err != nil {
		log.Fatal(err)
	}
	slog.Info("chaos plan armed", "seed", *chaosSeed, "specs", len(plan.Specs), "nodes_wired", attached)
	fmt.Printf("fault schedule:\n%s\n", plan.Schedule())

	slog.Info("observing fleet under chaos", "nodes", 16, "seconds", *seconds)
	runErr := fleet.RunContext(context.Background(), *seconds)
	if runErr != nil && !errors.Is(runErr, cluster.ErrNodeFailed) {
		// Only an unexpected failure class aborts the drill; injected
		// node deaths are the exercise.
		log.Fatal(runErr)
	}

	cov := fleet.Coverage()
	for _, n := range fleet.Nodes() {
		if err := n.Err(); err != nil {
			fmt.Printf("quarantined=%s cause=%q\n", n.Name, err)
		}
	}
	for _, name := range cov.Degraded {
		if n, ok := fleet.Lookup(name); ok {
			fmt.Printf("degraded=%s quality=%q\n", name, n.Quality())
		}
	}

	snap, total, err := fleet.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-9s %12s %12s %8s\n", "node", "est (W)", "meas (W)", "err")
	for _, e := range snap {
		n, ok := fleet.Lookup(e.Name)
		if !ok {
			log.Fatalf("snapshot names unknown node %s", e.Name)
		}
		meas, err := n.MeasuredMean()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %12.1f %12.1f %7.2f%%\n",
			e.Name, e.Watts, meas, 100*abs(e.Watts-meas)/meas)
	}
	fmt.Printf("%-9s %12.1f  (over %d of %d nodes)\n", "fleet", total, cov.Healthy, cov.Total)

	acc, err := fleet.VerifyAccuracy()
	if err != nil {
		log.Fatal(err)
	}

	// The survivors still support a consolidation decision.
	budget := total * 0.85
	conPlan := cluster.PlanConsolidation(snap, budget)
	fmt.Printf("\nbudget %.0f W: evict %v, projected %.0f W (fits: %v)\n",
		budget, conPlan.Evict, conPlan.Projected, conPlan.Fits)

	fmt.Printf("\nsurvivors=%d accuracy=%.2f%%\n", cov.Healthy, acc)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
