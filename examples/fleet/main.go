// Fleet: the paper's ensemble-management motivation at fleet scale.
// A mixed fleet of simulated servers is stepped in shards on the
// cluster's worker pool; a scheduler with NO power sensors
// (internal/sched) turns each interval's trickle-down estimates — and
// nothing else — into migration and power-down decisions. The example
// then verifies the decision physically: every host that absorbed load
// is rebuilt as a combined machine (machine.NewMixed) and measured over
// the rest of the horizon, and fleet energy under the scheduler must
// beat naive static placement by an asserted margin.
//
// Everything printed to stdout is a pure deterministic function of the
// flags: the same command line produces bit-identical output at any
// -workers value, which CI exploits with a double-run cmp. Logs go to
// stderr.
//
//	go run ./examples/fleet                 # 12-node scenario with physical verification
//	go run ./examples/fleet -smoke 1000     # 1k-node sharded smoke (no physical rebuild)
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"

	"trickledown/internal/cluster"
	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/sched"
	"trickledown/internal/telemetry"
)

const (
	observeSec     = 30.0 // interval the scheduler decides from
	restSec        = 90.0 // remainder of the horizon after actuation
	horizonSec     = observeSec + restSec
	threadsPerNode = 8 // default config: 4 CPUs x 2 threads
)

// nodeSpec is one fleet node's static inventory: which workload it
// runs and on how many hardware threads.
type nodeSpec struct {
	name    string
	wl      string
	threads int
}

// fleetSpec is the default scenario: four busy web nodes, two
// middle-tier app nodes and six barely-loaded edge caches — the
// energy-proportionality problem in miniature (half the fleet burns an
// idle floor for a trickle of work).
var fleetSpec = []nodeSpec{
	{"web-0", "gcc", 4}, {"web-1", "gcc", 4}, {"web-2", "gcc", 4}, {"web-3", "gcc", 4},
	{"app-0", "mcf", 2}, {"app-1", "mcf", 2},
	{"edge-0", "mesa", 1}, {"edge-1", "mesa", 1}, {"edge-2", "mesa", 1},
	{"edge-3", "mesa", 1}, {"edge-4", "mesa", 1}, {"edge-5", "mesa", 1},
}

func main() {
	log.SetFlags(0)
	smoke := flag.Int("smoke", 0, "run the N-node sharded smoke scenario instead (no physical rebuild)")
	workers := flag.Int("workers", 4, "cluster stepping workers (output is identical at any value)")
	minMargin := flag.Float64("min-margin", 10, "fail unless scheduler energy beats naive placement by this percent")
	verbose := flag.Bool("v", false, "debug-level logging on stderr")
	flag.Parse()
	telemetry.SetupLogger(*verbose)

	est := train()
	if *smoke > 0 {
		runSmoke(est, *smoke, *workers)
		return
	}
	runScenario(est, *workers, *minMargin)
}

// train fits the estimator once; the same model drives every node and
// the scheduler ("the cost of implementation is small").
func train() *core.Estimator {
	slog.Info("training the fleet's estimator")
	gcc, err := machine.RunWorkload("gcc", 180, 1)
	check(err)
	mcf, err := machine.RunWorkload("mcf", 180, 2)
	check(err)
	dl, err := machine.RunWorkload("diskload", 150, 3)
	check(err)
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	check(err)
	return est
}

// placements lays a workload across the first n hardware threads.
func placements(wl string, n, base int) []machine.Placement {
	out := make([]machine.Placement, n)
	for i := range out {
		out[i] = machine.Placement{Workload: wl, Thread: base + i}
	}
	return out
}

// calibrate derives the scheduler's static inventory numbers through
// the estimator (never the rails): the hardware configuration's idle
// floor and a safe-capacity ceiling from a fully loaded box.
func calibrate(est *core.Estimator, cfg machine.Config, busy []machine.Placement) (idleW, capW float64) {
	c, err := cluster.New(est)
	check(err)
	idleCfg := cfg
	idleCfg.Seed = 901
	_, err = c.AddMixedConfig("calib-idle", idleCfg, placements("idle", len(busy), 0))
	check(err)
	busyCfg := cfg
	busyCfg.Seed = 902
	_, err = c.AddMixedConfig("calib-busy", busyCfg, busy)
	check(err)
	check(c.Run(observeSec))
	idle, ok := c.Lookup("calib-idle")
	if !ok {
		log.Fatal("calibration node missing")
	}
	idleW, err = idle.EstimatedMean()
	check(err)
	full, ok := c.Lookup("calib-busy")
	if !ok {
		log.Fatal("calibration node missing")
	}
	fullW, err := full.EstimatedMean()
	check(err)
	return idleW, fullW * 1.05
}

// runScenario is the default mode: observe, decide, actuate, then
// physically verify the decision and assert the energy margin.
func runScenario(est *core.Estimator, workers int, minMargin float64) {
	cfg := machine.DefaultConfig()
	idleW, capW := calibrate(est, cfg, placements("gcc", threadsPerNode, 0))

	rack, err := cluster.New(est)
	check(err)
	rack.SetWorkers(workers)
	for i, n := range fleetSpec {
		nodeCfg := cfg
		nodeCfg.Seed = uint64(100 + i)
		_, err := rack.AddMixedConfig(n.name, nodeCfg, placements(n.wl, n.threads, 0))
		check(err)
	}
	fmt.Printf("fleet: %d nodes, idle floor %.1f W, capacity %.1f W per node\n",
		rack.NumNodes(), idleW, capW)

	// Interval 1: observe through the estimator only.
	check(rack.Run(observeSec))
	snap, total, err := rack.Snapshot()
	check(err)
	acc, err := rack.VerifyAccuracy()
	check(err)
	fmt.Printf("interval 1 (0..%.0fs): estimated fleet draw %.1f W, sensorless accuracy %.2f%%\n",
		observeSec, total, acc)

	// Decide from estimates plus static inventory.
	info := make([]sched.NodeInfo, len(snap))
	for i, e := range snap {
		used := fleetSpec[i].threads
		info[i] = sched.NodeInfo{
			Name: e.Name, Watts: e.Watts, IdleWatts: idleW, CapacityWatts: capW,
			UsedThreads: used, FreeThreads: threadsPerNode - used, Healthy: true,
		}
	}
	decision := sched.Plan(info, sched.Config{
		MigrationCostJ: 2000, AmortizeSec: restSec, MinNodes: 2,
	})
	fmt.Printf("scheduler: %s\n", decision.Summary())
	for _, a := range decision.Actions {
		fmt.Printf("  %s\n", a)
	}
	if len(decision.Actions) == 0 {
		log.Fatal("scheduler found nothing to consolidate; scenario is broken")
	}

	// Actuate: power evicted nodes down; resolve each migrant's final
	// host through any chain of later evictions.
	finalHost := map[string][]string{} // host -> migrants, decision order
	hostOf := map[string]string{}
	for _, a := range decision.Actions {
		if a.Host == "" {
			log.Fatalf("unexpected shed without budget pressure: %v", a)
		}
		hostOf[a.Node] = a.Host
		check(rack.SetPowered(a.Node, false))
	}
	for _, a := range decision.Actions {
		h := a.Host
		for {
			next, evicted := hostOf[h]
			if !evicted {
				break
			}
			h = next
		}
		finalHost[h] = append(finalHost[h], a.Node)
	}

	// Physical verification: rebuild every host that absorbed load as a
	// combined machine and measure it over the rest of the horizon.
	specOf := map[string]nodeSpec{}
	for _, n := range fleetSpec {
		specOf[n.name] = n
	}
	measA := map[string]float64{} // per-node measured mean from interval 1
	for _, n := range rack.Nodes() {
		m, err := n.MeasuredMean()
		check(err)
		measA[n.Name] = m
	}
	verify, err := cluster.New(est)
	check(err)
	verify.SetWorkers(workers)
	type rebuilt struct{ host, label string }
	var rebuilds []rebuilt
	for _, a := range decision.Actions { // decision order keeps output stable
		host := a.Host
		if _, evicted := hostOf[host]; evicted {
			continue // load chained onward; handled at the final host
		}
		migrants, done := finalHost[host], false
		for _, r := range rebuilds {
			done = done || r.host == host
		}
		if done || len(migrants) == 0 {
			continue
		}
		hs := specOf[host]
		combined := placements(hs.wl, hs.threads, 0)
		cursor := hs.threads
		label := host
		for _, m := range migrants {
			ms := specOf[m]
			combined = append(combined, placements(ms.wl, ms.threads, cursor)...)
			cursor += ms.threads
			label += "+" + m
		}
		nodeCfg := cfg
		nodeCfg.Seed = uint64(9000 + len(rebuilds))
		_, err := verify.AddMixedConfig(host, nodeCfg, combined)
		check(err)
		rebuilds = append(rebuilds, rebuilt{host, label})
	}
	check(verify.Run(restSec))

	// Energy over the horizon: naive keeps every node powered at its
	// measured draw; the scheduler pays interval 1 everywhere, then only
	// survivors — with hosts at their measured combined draw — plus the
	// one-time migration cost.
	naiveJ, schedJ := 0.0, decision.MigrationJ
	for _, n := range fleetSpec {
		naiveJ += measA[n.name] * horizonSec
		schedJ += measA[n.name] * observeSec
	}
	fmt.Printf("physical verification (%.0f..%.0fs):\n", observeSec, horizonSec)
	for _, r := range rebuilds {
		node, ok := verify.Lookup(r.host)
		if !ok {
			log.Fatal("rebuilt host missing")
		}
		m, err := node.MeasuredMean()
		check(err)
		fmt.Printf("  %s: measured %.1f W combined\n", r.label, m)
		schedJ += m * restSec
	}
	for _, n := range fleetSpec { // untouched survivors keep their draw
		_, isHost := finalHost[n.name]
		_, evicted := hostOf[n.name]
		if !isHost && !evicted {
			schedJ += measA[n.name] * restSec
		}
	}

	margin := 100 * (naiveJ - schedJ) / naiveJ
	fmt.Printf("naive static placement: %.1f kJ over %.0f s\n", naiveJ/1000, horizonSec)
	fmt.Printf("scheduler-driven fleet: %.1f kJ (includes %.1f kJ migration cost)\n",
		schedJ/1000, decision.MigrationJ/1000)
	fmt.Printf("fleet energy saved: %.2f%%\n", margin)
	if margin < minMargin {
		fmt.Fprintf(os.Stderr, "FAIL: margin %.2f%% below required %.2f%%\n", margin, minMargin)
		os.Exit(1)
	}
	fmt.Println("OK")
}

// smokeWorkloads cycles across the smoke fleet so shards step
// mixed-cost nodes.
var smokeWorkloads = []string{"gcc", "mcf", "mesa", "vortex"}

// runSmoke is the CI scenario: n small-generation nodes stepped through
// the sharded path, one scheduling decision actuated purely through
// SetPowered, and a second interval over the survivors. No physical
// rebuild — the point is fleet-scale stepping, determinism and the
// race detector, not the energy margin.
func runSmoke(est *core.Estimator, n, workers int) {
	lightCfg := machine.DefaultConfig()
	lightCfg.NumCPUs = 1
	lightCfg.ThreadsPerCPU = 2
	lightCfg.NumDisks = 1
	idleW, capW := calibrate(est, lightCfg, placements("gcc", 2, 0))

	fleet, err := cluster.New(est)
	check(err)
	fleet.SetWorkers(workers)
	for i := 0; i < n; i++ {
		cfg := lightCfg
		cfg.Seed = uint64(3000 + i)
		_, err := fleet.AddMixedConfig(fmt.Sprintf("smoke-%05d", i), cfg,
			[]machine.Placement{{Workload: smokeWorkloads[i%len(smokeWorkloads)], Thread: i % 2}})
		check(err)
	}
	fmt.Printf("fleet[smoke]: %d nodes, idle floor %.1f W, capacity %.1f W\n", n, idleW, capW)

	const interval = 2.0
	check(fleet.Run(interval))
	buf := make([]cluster.Estimate, 0, n)
	snap, total, err := fleet.SnapshotInto(buf)
	check(err)
	acc, err := fleet.VerifyAccuracy()
	check(err)
	fmt.Printf("interval 1: estimated fleet draw %.1f W, sensorless accuracy %.2f%%\n", total, acc)

	info := make([]sched.NodeInfo, len(snap))
	for i, e := range snap {
		info[i] = sched.NodeInfo{
			Name: e.Name, Watts: e.Watts, IdleWatts: idleW, CapacityWatts: capW,
			UsedThreads: 1, FreeThreads: 1, Healthy: true,
		}
	}
	decision := sched.Plan(info, sched.Config{
		BudgetWatts: 0.6 * total, MigrationCostJ: 500, AmortizeSec: 60, MinNodes: 1,
	})
	migrated, shed := 0, 0
	for _, a := range decision.Actions {
		if a.Host == "" {
			shed++
		} else {
			migrated++
		}
		check(fleet.SetPowered(a.Node, false))
	}
	fmt.Printf("scheduler: %s (migrated %d, shed %d)\n", decision.Summary(), migrated, shed)
	if len(decision.Actions) > 0 {
		fmt.Printf("  first action: %s\n", decision.Actions[0])
	}

	check(fleet.Run(interval))
	snap, total, err = fleet.SnapshotInto(snap)
	check(err)
	cov := fleet.Coverage()
	fmt.Printf("interval 2: %d survivors, estimated fleet draw %.1f W\n", len(snap), total)
	if cov.Healthy != n-len(decision.Actions) || !cov.Full() {
		fmt.Fprintf(os.Stderr, "FAIL: coverage %+v after %d evictions\n", cov, len(decision.Actions))
		os.Exit(1)
	}
	// Survivors draw at most the projection: smoke actuation powers
	// migrants off without replaying their load on the hosts, so the
	// realized total can only undershoot it.
	if total > decision.Projected+1 {
		fmt.Fprintf(os.Stderr, "FAIL: post-actuation draw %.1f W exceeds projection %.1f W\n", total, decision.Projected)
		os.Exit(1)
	}
	fmt.Println("OK")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
