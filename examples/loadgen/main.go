// Command loadgen drives tdserve at controlled load and records what
// happened: client-observed throughput and latency quantiles plus the
// server's own span-taxonomy numbers (/statz), merged into the repo's
// BENCH_<date>.json record so the service's performance claims are
// checked-in data, not anecdotes.
//
// With -addr it targets a running tdserve; without, it self-hosts — it
// trains a small-scale estimator, starts the serve stack in-process on
// a loopback listener, and drives it over real HTTP, so the measured
// path includes wire encoding, the TCP stack, decode, admission, queue
// and batched estimation.
//
// Usage:
//
//	loadgen                         # self-host, unpaced (max throughput)
//	loadgen -rate 50000 -duration 10s
//	loadgen -addr localhost:8080 -clients 8 -batch 512
//	loadgen -bench-out BENCH_2026-08-08.json   # merge results into the record
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"trickledown/internal/benchjson"
	"trickledown/internal/experiments"
	"trickledown/internal/perfctr"
	"trickledown/internal/serve"
	"trickledown/internal/tracez"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	addr := flag.String("addr", "", "target tdserve address; empty self-hosts the serve stack in-process")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive load")
	clients := flag.Int("clients", 4, "concurrent producer connections")
	batch := flag.Int("batch", 256, "samples per ingest request")
	nodes := flag.Int("nodes", 8, "distinct node names to report under")
	cpus := flag.Int("cpus", 2, "CPUs per synthetic sample")
	rate := flag.Float64("rate", 0, "total target samples/sec across all clients (0 = unpaced)")
	trainScale := flag.Float64("train-scale", 0.02, "training scale when self-hosting")
	queue := flag.Int("queue", 256, "self-hosted ingest queue depth")
	benchOut := flag.String("bench-out", "", "merge results into this benchjson file (created if missing)")
	traceSample := flag.Float64("trace-sample", 0.01, "client-side head sampling rate for stamped trace contexts (0 = unstamped)")
	flag.Parse()

	target := *addr
	if target == "" {
		stop, hosted, err := selfHost(*trainScale, *queue)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		target = hosted
	}
	base := "http://" + target

	if err := waitHealthy(base, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	res, err := drive(base, *duration, *clients, *batch, *nodes, *cpus, *rate, *traceSample)
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	if *benchOut != "" {
		if err := mergeBench(*benchOut, res); err != nil {
			log.Fatal(err)
		}
		log.Printf("merged results into %s", *benchOut)
	}
	if res.SamplesPerSec <= 0 {
		os.Exit(1)
	}
}

// selfHost trains an estimator and brings up the full serve stack on a
// loopback listener, returning its address and a shutdown func.
func selfHost(scale float64, queueDepth int) (func(), string, error) {
	log.Printf("self-hosting: training estimator (scale %g)", scale)
	est, err := experiments.NewRunner(experiments.Options{
		Seed: 100, TrainSeed: 10, Scale: scale,
	}).Estimator()
	if err != nil {
		return nil, "", fmt.Errorf("train: %w", err)
	}
	srv, err := serve.New(serve.Config{Estimator: est, QueueDepth: queueDepth})
	if err != nil {
		return nil, "", err
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() {
		_ = hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	}
	return stop, ln.Addr().String(), nil
}

// results is everything one load run learned.
type results struct {
	Duration      time.Duration
	SentSamples   uint64
	OKBatches     uint64
	ShedBatches   uint64 // 429 responses (queue full or rate limited)
	OtherErrors   uint64
	SamplesPerSec float64 // server-side estimated samples / wall duration
	ClientP50ms   float64 // client-observed request latency quantiles
	ClientP95ms   float64
	ClientP99ms   float64
	Stats         serve.Stats // server /statz snapshot after the run
	// SlowTraces are the server's slowest end-to-end traces after the
	// run — the request-level view behind the p99 number.
	SlowTraces []tracez.TraceJSON
}

// drive runs the producer fleet against base for d and collects both
// sides of the story.
func drive(base string, d time.Duration, clients, batchN, nodes, cpus int, rate, traceSample float64) (*results, error) {
	before, err := fetchStats(base)
	if err != nil {
		return nil, fmt.Errorf("statz before: %w", err)
	}
	// Client-minted trace contexts: the sampling decision is a pure
	// function of (ID, rate), so the server agrees on which batches are
	// recorded without any negotiation.
	sampler := tracez.NewRecorder(tracez.Config{SampleRate: traceSample})

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		res      = &results{Duration: d}
		lats     []float64
		deadline = time.Now().Add(d)
	)
	perClientRate := rate / float64(clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			clientID := fmt.Sprintf("loadgen-%d", c)
			var buf []byte
			var myLats []float64
			var sent, ok, shed, other uint64
			next := time.Now()
			interval := time.Duration(0)
			if perClientRate > 0 {
				interval = time.Duration(float64(batchN) / perClientRate * float64(time.Second))
			}
			for seq := 0; time.Now().Before(deadline); seq++ {
				if interval > 0 {
					if wait := time.Until(next); wait > 0 {
						time.Sleep(wait)
					}
					next = next.Add(interval)
				}
				node := fmt.Sprintf("node-%02d", (c*7+seq)%nodes)
				samples := synthBatch(batchN, cpus, float64(seq*batchN), c)
				var ext perfctr.TraceExt
				if traceSample > 0 {
					tc := sampler.Mint()
					ext = perfctr.TraceExt{ID: [16]byte(tc.ID), Sampled: tc.Sampled}
				}
				buf, err = perfctr.EncodeBatchExt(buf[:0], node, samples, ext)
				if err != nil {
					log.Fatalf("encode: %v", err)
				}
				start := time.Now()
				req, _ := http.NewRequest(http.MethodPost, base+"/ingest", bytes.NewReader(buf))
				req.Header.Set("X-Client-ID", clientID)
				resp, err := client.Do(req)
				if err != nil {
					other++
					continue
				}
				resp.Body.Close()
				myLats = append(myLats, time.Since(start).Seconds())
				sent += uint64(batchN)
				switch resp.StatusCode {
				case http.StatusAccepted:
					ok++
				case http.StatusTooManyRequests:
					shed++
				default:
					other++
				}
			}
			mu.Lock()
			res.SentSamples += sent
			res.OKBatches += ok
			res.ShedBatches += shed
			res.OtherErrors += other
			lats = append(lats, myLats...)
			mu.Unlock()
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchStats(base)
	if err != nil {
		return nil, fmt.Errorf("statz after: %w", err)
	}
	res.Stats = after
	if traceSample > 0 {
		if slow, err := fetchSlowTraces(base, 5); err != nil {
			log.Printf("tracez fetch failed (continuing): %v", err)
		} else {
			res.SlowTraces = slow
		}
	}
	res.Duration = elapsed
	res.SamplesPerSec = float64(after.SamplesEstimated-before.SamplesEstimated) / elapsed.Seconds()
	sort.Float64s(lats)
	res.ClientP50ms = quantile(lats, 0.50) * 1e3
	res.ClientP95ms = quantile(lats, 0.95) * 1e3
	res.ClientP99ms = quantile(lats, 0.99) * 1e3
	return res, nil
}

// synthBatch fabricates a batch of sinusoidally-varying counter samples:
// activity swings between near-idle and saturated like a diurnal load
// curve, so the estimators see the full dynamic range, not one point.
func synthBatch(n, cpus int, t0 float64, seed int) []perfctr.Sample {
	out := make([]perfctr.Sample, n)
	for i := range out {
		t := t0 + float64(i)
		phase := 0.5 + 0.5*math.Sin(t/300+float64(seed))
		s := perfctr.Sample{TargetSeconds: t, IntervalSec: 1,
			CPUs: make([]perfctr.CPUCounts, cpus)}
		for c := range s.CPUs {
			activity := phase * (0.5 + 0.5*math.Sin(t/60+float64(c)))
			cycles := uint64(2.8e9)
			s.CPUs[c] = perfctr.CPUCounts{
				Cycles:        cycles,
				HaltedCycles:  uint64((1 - activity) * 2.8e9 * 0.9),
				FetchedUops:   uint64(activity * 2.2e9),
				L3LoadMisses:  uint64(activity * 4e6),
				L3Misses:      uint64(activity * 6e6),
				TLBMisses:     uint64(activity * 2e5),
				BusTx:         uint64(activity * 8e6),
				BusPrefetchTx: uint64(activity * 1.5e6),
				DMAOther:      uint64(activity * 1e6),
				Uncacheable:   uint64(activity * 4e4),
			}
		}
		out[i] = s
	}
	return out
}

func fetchStats(base string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := http.Get(base + "/statz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/statz: status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// fetchSlowTraces pulls the server's slowest-by-e2e traces from
// /debug/tracez and returns the top n, slowest first.
func fetchSlowTraces(base string, n int) ([]tracez.TraceJSON, error) {
	resp, err := http.Get(base + "/debug/tracez?view=slow&format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/tracez: status %d", resp.StatusCode)
	}
	var snap tracez.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	slow := snap.Slowest["e2e"]
	sort.Slice(slow, func(i, j int) bool { return slow[i].E2EMs > slow[j].E2EMs })
	if len(slow) > n {
		slow = slow[:n]
	}
	return slow, nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", base, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// quantile reads q from a sorted slice (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func report(r *results) {
	st := r.Stats
	fmt.Printf("duration        %s\n", r.Duration.Round(time.Millisecond))
	fmt.Printf("sent            %d samples (%d batches ok, %d shed, %d errors)\n",
		r.SentSamples, r.OKBatches, r.ShedBatches, r.OtherErrors)
	fmt.Printf("throughput      %.0f samples/sec (server-side estimated)\n", r.SamplesPerSec)
	fmt.Printf("client latency  p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
		r.ClientP50ms, r.ClientP95ms, r.ClientP99ms)
	fmt.Printf("server e2e      p50 %.3fms  p95 %.3fms  p99 %.3fms (overflow %d)\n",
		st.E2E.P50ms, st.E2E.P95ms, st.E2E.P99ms, st.E2E.Overflow)
	fmt.Printf("queue wait      p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
		st.QueueWait.P50ms, st.QueueWait.P95ms, st.QueueWait.P99ms)
	fmt.Printf("server totals   ingested=%d estimated=%d shed=%d nonfinite=%d nodes=%d shedding=%v\n",
		st.SamplesIngested, st.SamplesEstimated, st.SamplesShed, st.NonFinite, st.Nodes, st.SheddingActive)
	if len(r.SlowTraces) > 0 {
		fmt.Printf("slowest server-observed traces (e2e):\n")
		for i, tr := range r.SlowTraces {
			fmt.Printf("  %d. %s  node=%s  %s\n", i+1, tr.ID, tr.Node, traceBreakdown(tr))
		}
	}
}

// traceBreakdown renders one trace's per-stage latency split.
func traceBreakdown(tr tracez.TraceJSON) string {
	return fmt.Sprintf("admission %.3fms  queue %.3fms  service %.3fms  e2e %.3fms  outcome=%s",
		tr.AdmissionMs, tr.QueueMs, tr.ServiceMs, tr.E2EMs, tr.Outcome)
}

// mergeBench folds the run into a benchjson record, preserving every
// existing entry (the tdbench suite) and replacing any previous loadgen
// entry — one file per date carries both the suite and the service
// numbers, so the CI alloc gate's newest-file baseline never loses
// benchmarks.
func mergeBench(path string, r *results) error {
	rec, err := benchjson.Load(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		rec = &benchjson.Result{Date: time.Now().Format("2006-01-02")}
	}
	entry := benchjson.Benchmark{
		Name:       "LoadgenHTTPIngest",
		Iterations: int(r.OKBatches),
		NsPerOp:    r.ClientP50ms * 1e6,
		Metrics: map[string]float64{
			"samples_per_sec":       r.SamplesPerSec,
			"client_p50_ms":         r.ClientP50ms,
			"client_p95_ms":         r.ClientP95ms,
			"client_p99_ms":         r.ClientP99ms,
			"server_e2e_p50_ms":     r.Stats.E2E.P50ms,
			"server_e2e_p99_ms":     r.Stats.E2E.P99ms,
			"server_queue_p99_ms":   r.Stats.QueueWait.P99ms,
			"server_service_p99_ms": r.Stats.Service.P99ms,
			"shed_samples":          float64(r.Stats.SamplesShed),
		},
	}
	for i, tr := range r.SlowTraces {
		if entry.Notes == nil {
			entry.Notes = make(map[string]string)
		}
		entry.Notes[fmt.Sprintf("slow_trace_%d", i+1)] =
			fmt.Sprintf("%s %s", tr.ID, traceBreakdown(tr))
	}
	replaced := false
	for i := range rec.Benchmarks {
		if rec.Benchmarks[i].Name == entry.Name {
			rec.Benchmarks[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		rec.Benchmarks = append(rec.Benchmarks, entry)
	}
	return benchjson.Write(path, rec)
}
