// Tenants: multi-tenant power attribution — the chargeback use case the
// paper's per-processor accounting (Eq. 1) hints at, extended to whole
// subsystems. Four tenants share one node through a workload.Cohort
// (shared-L3/bus interference applied between them); the node's power
// is estimated sensorlessly from its counters, and core.AttributeTenants
// splits each subsystem's reading by the tenants' shares of that
// subsystem's driving metric: the idle floor divides evenly, the
// dynamic part proportionally. The metamorphic battery
// (core.CheckAttribution) gates the result — conservation, monotonicity
// in own demand, single-tenant identity — and a machine-level identity
// check replays one tenant alone and requires the cohort wrapper to be
// invisible, bit for bit.
//
// Everything on stdout is a pure deterministic function of the flags;
// logs go to stderr.
//
//	go run ./examples/tenants
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"

	"trickledown/internal/align"
	"trickledown/internal/core"
	"trickledown/internal/machine"
	"trickledown/internal/power"
	"trickledown/internal/sim"
	"trickledown/internal/telemetry"
	"trickledown/internal/workload"
)

const shareSec = 60.0 // how long the tenants share the node

var tenantWorkloads = []string{"gcc", "mcf", "dbt-2", "mesa"}

func main() {
	log.SetFlags(0)
	verbose := flag.Bool("v", false, "debug-level logging on stderr")
	flag.Parse()
	telemetry.SetupLogger(*verbose)

	est := train()
	cfg := machine.DefaultConfig()
	cfg.Seed = 42

	// Idle floor of this hardware configuration, through the estimator
	// (never the rails — the meter stays sensorless end to end).
	idleCfg := cfg
	idleCfg.Seed = 43
	idle := meanEstimate(est, runSpecMachine(idleCfg, "idle"))

	// The shared node: one cohort, four tenants, threads 0-3.
	co := workload.NewCohort(workload.CohortConfig{})
	mkRNG := sim.NewRNG(4242)
	for ti, wl := range tenantWorkloads {
		spec, err := workload.ByName(wl)
		check(err)
		_, err = co.Add(wl, spec.Make(ti, mkRNG.Split()))
		check(err)
	}
	spec, err := co.Spec("tenants")
	check(err)
	placements := make([]machine.Placement, len(tenantWorkloads))
	for ti := range tenantWorkloads {
		placements[ti] = machine.Placement{Thread: ti, Spec: &spec}
	}
	srv, err := machine.NewMixed(cfg, placements)
	check(err)
	srv.Run(shareSec)
	ds, err := srv.Dataset()
	check(err)
	total := meanEstimate(est, ds)

	// Attribute and gate.
	usage := co.Usage()
	tenants := make([]core.TenantActivity, len(usage))
	for i, u := range usage {
		tenants[i] = core.TenantActivityFromUsage(u)
	}
	if err := core.CheckAttribution(total, idle, tenants); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: metamorphic battery: %v\n", err)
		os.Exit(1)
	}
	per, err := core.AttributeTenants(total, idle, tenants)
	check(err)

	fmt.Printf("4 tenants shared one node for %.0f s (estimated mean %.1f W, idle floor %.1f W)\n",
		shareSec, total.Total(), idle.Total())
	fmt.Printf("%-8s %8s %8s %8s %8s %8s %9s %7s\n",
		"tenant", "CPU", "chipset", "memory", "I/O", "disk", "total", "share")
	var sum float64
	for i, r := range per {
		fmt.Printf("%-8s %7.1fW %7.1fW %7.1fW %7.1fW %7.1fW %8.1fW %6.1f%%\n",
			tenants[i].Name, r[power.SubCPU], r[power.SubChipset], r[power.SubMemory],
			r[power.SubIO], r[power.SubDisk], r.Total(), 100*r.Total()/total.Total())
		sum += r.Total()
	}
	fmt.Printf("%-8s %44s %8.1fW %6.1f%%\n", "node", "", sum, 100*sum/total.Total())
	fmt.Println("metamorphic battery: conservation, monotonicity, identity all hold")

	soloIdentity(cfg)
	fmt.Println("OK")
}

// soloIdentity proves the cohort wrapper is invisible when a tenant
// runs alone: the same workload placed plainly and through a
// single-tenant cohort, on machines with the same seed, must produce
// byte-identical ground-truth datasets.
func soloIdentity(cfg machine.Config) {
	cfg.Seed = 77
	run := func(wrap bool) string {
		spec := workload.Spec{
			Name:      "solo",
			Class:     workload.ClassInteger,
			Instances: 1,
			Make: func(instance int, rng *sim.RNG) workload.Generator {
				inner, err := workload.ByName("gcc")
				check(err)
				g := inner.Make(0, rng)
				if !wrap {
					return g
				}
				solo := workload.NewCohort(workload.CohortConfig{})
				i, err := solo.Add("solo", g)
				check(err)
				w, err := solo.Generator(i)
				check(err)
				return w
			},
		}
		srv, err := machine.NewMixed(cfg, []machine.Placement{{Thread: 0, Spec: &spec}})
		check(err)
		srv.Run(20)
		ds, err := srv.Dataset()
		check(err)
		return align.Fingerprint(ds)
	}
	plain, wrapped := run(false), run(true)
	if plain != wrapped {
		fmt.Fprintf(os.Stderr, "FAIL: single-tenant cohort run %s != plain run %s\n", wrapped, plain)
		os.Exit(1)
	}
	fmt.Printf("single-tenant identity: cohort run == plain run (%s)\n", plain)
}

// runSpecMachine runs one registry workload on cfg and returns the
// aligned dataset.
func runSpecMachine(cfg machine.Config, wl string) *align.Dataset {
	spec, err := workload.ByName(wl)
	check(err)
	srv, err := machine.New(cfg, spec)
	check(err)
	srv.Run(shareSec)
	ds, err := srv.Dataset()
	check(err)
	return ds
}

// meanEstimate averages the estimator's per-subsystem readings over a
// dataset.
func meanEstimate(est *core.Estimator, ds *align.Dataset) power.Reading {
	var sum power.Reading
	for i := range ds.Rows {
		r := est.Estimate(&ds.Rows[i].Counters)
		for s := range sum {
			sum[s] += r[s]
		}
	}
	for s := range sum {
		sum[s] /= float64(ds.Len())
	}
	return sum
}

// train fits the estimator once, from the paper's training trio.
func train() *core.Estimator {
	slog.Info("training the estimator")
	gcc, err := machine.RunWorkload("gcc", 150, 1)
	check(err)
	mcf, err := machine.RunWorkload("mcf", 150, 2)
	check(err)
	dl, err := machine.RunWorkload("diskload", 120, 3)
	check(err)
	est, err := core.TrainEstimator(core.TrainingSet{
		CPU: gcc, Memory: mcf, Disk: dl, IO: dl, Chipset: gcc,
	})
	check(err)
	return est
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
