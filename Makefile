# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all test vet bench bench-all bench-gate race cover report tables figures examples loc validate validate-update

all: vet test

test:
	$(GO) test ./...

vet:
	gofmt -l . && $(GO) vet ./...

race:
	$(GO) test -race ./...

# Run the fixed benchmark suite and record BENCH_<date>.json (see
# DESIGN.md "Performance"). `make bench-gate` additionally fails when
# allocs/op regresses >20% against the newest checked-in baseline.
bench:
	$(GO) run ./cmd/tdbench

bench-gate:
	$(GO) run ./cmd/tdbench -o /tmp/bench_current.json \
		-baseline $$(ls BENCH_*.json | sort | tail -1)

# Paper-conformance gate (see DESIGN.md §3e): leave-one-workload-out
# cross-validation plus the metamorphic check battery, gated against the
# blessed GOLDEN.json corpus. Fails if any subsystem's held-out error
# breaches the paper's 9% bound, drifts >1 point from the blessed value,
# or any dataset fingerprint changes. `make validate-update` re-blesses
# GOLDEN.json after a deliberate model/simulator change.
validate:
	$(GO) run ./cmd/tdvalidate -gate -golden GOLDEN.json -o validate_report.json

validate-update:
	$(GO) run ./cmd/tdvalidate -update -golden GOLDEN.json -o validate_report.json

# The raw, unrecorded full suite (every Benchmark* in the repo).
bench-all:
	$(GO) test -bench=. -benchmem -run=NONE .

cover:
	$(GO) test -cover ./...

# Regenerate EXPERIMENTS.md at full paper scale.
report:
	$(GO) run ./cmd/tdreport

tables:
	$(GO) run ./cmd/tdtables

figures:
	$(GO) run ./cmd/tdfigures -out figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/billing
	$(GO) run ./examples/phases
	$(GO) run ./examples/thermal
	$(GO) run ./examples/governor

loc:
	find . -name '*.go' | xargs wc -l | tail -1
