# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all test vet bench race cover report tables figures examples loc

all: vet test

test:
	$(GO) test ./...

vet:
	gofmt -l . && $(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

cover:
	$(GO) test -cover ./...

# Regenerate EXPERIMENTS.md at full paper scale.
report:
	$(GO) run ./cmd/tdreport

tables:
	$(GO) run ./cmd/tdtables

figures:
	$(GO) run ./cmd/tdfigures -out figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/billing
	$(GO) run ./examples/phases
	$(GO) run ./examples/thermal
	$(GO) run ./examples/governor

loc:
	find . -name '*.go' | xargs wc -l | tail -1
