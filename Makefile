# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all test vet bench bench-all bench-gate race cover report tables figures examples loc

all: vet test

test:
	$(GO) test ./...

vet:
	gofmt -l . && $(GO) vet ./...

race:
	$(GO) test -race ./...

# Run the fixed benchmark suite and record BENCH_<date>.json (see
# DESIGN.md "Performance"). `make bench-gate` additionally fails when
# allocs/op regresses >20% against the newest checked-in baseline.
bench:
	$(GO) run ./cmd/tdbench

bench-gate:
	$(GO) run ./cmd/tdbench -o /tmp/bench_current.json \
		-baseline $$(ls BENCH_*.json | sort | tail -1)

# The raw, unrecorded full suite (every Benchmark* in the repo).
bench-all:
	$(GO) test -bench=. -benchmem -run=NONE .

cover:
	$(GO) test -cover ./...

# Regenerate EXPERIMENTS.md at full paper scale.
report:
	$(GO) run ./cmd/tdreport

tables:
	$(GO) run ./cmd/tdtables

figures:
	$(GO) run ./cmd/tdfigures -out figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/billing
	$(GO) run ./examples/phases
	$(GO) run ./examples/thermal
	$(GO) run ./examples/governor

loc:
	find . -name '*.go' | xargs wc -l | tail -1
