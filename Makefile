# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all test vet bench bench-all bench-gate race cover report tables figures examples loc validate validate-update serve loadgen serve-smoke drift-drill fleet fleet-smoke replay tenants diurnal

all: vet test

test:
	$(GO) test ./...

vet:
	gofmt -l . && $(GO) vet ./...

race:
	$(GO) test -race ./...

# Run the fixed benchmark suite and record BENCH_<date>.json (see
# DESIGN.md "Performance"). `make bench-gate` additionally fails when
# allocs/op regresses >20% against the newest checked-in baseline.
bench:
	$(GO) run ./cmd/tdbench

bench-gate:
	$(GO) run ./cmd/tdbench -o /tmp/bench_current.json \
		-baseline $$(ls BENCH_*.json | sort | tail -1)

# Paper-conformance gate (see DESIGN.md §3e): leave-one-workload-out
# cross-validation plus the metamorphic check battery, gated against the
# blessed GOLDEN.json corpus. Fails if any subsystem's held-out error
# breaches the paper's 9% bound, drifts >1 point from the blessed value,
# or any dataset fingerprint changes. `make validate-update` re-blesses
# GOLDEN.json after a deliberate model/simulator change.
validate:
	$(GO) run ./cmd/tdvalidate -gate -golden GOLDEN.json -o validate_report.json

validate-update:
	$(GO) run ./cmd/tdvalidate -update -golden GOLDEN.json -o validate_report.json

# The raw, unrecorded full suite (every Benchmark* in the repo).
bench-all:
	$(GO) test -bench=. -benchmem -run=NONE .

cover:
	$(GO) test -cover ./...

# Regenerate EXPERIMENTS.md at full paper scale.
report:
	$(GO) run ./cmd/tdreport

tables:
	$(GO) run ./cmd/tdtables

figures:
	$(GO) run ./cmd/tdfigures -out figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/billing
	$(GO) run ./examples/phases
	$(GO) run ./examples/thermal
	$(GO) run ./examples/governor

# Live estimation service (DESIGN.md §3f): trains at a small scale and
# listens on :8080. `make loadgen` drives the self-hosted stack at max
# throughput; `make serve-smoke` is the CI drill — an under-capacity
# paced run that must shed nothing.
serve:
	$(GO) run ./cmd/tdserve -train-scale 0.05

loadgen:
	$(GO) run ./examples/loadgen -duration 5s

serve-smoke:
	$(GO) run ./examples/loadgen -duration 3s -rate 50000 -clients 2

# Self-healing drift drill (DESIGN.md §3h): workload-mix drift must
# breach the 9% bound on a frozen estimator while the adaptive one
# detects, refits, and hot-swaps back under it; then the negative
# control (corrupted challenger rejected by the shadow gate) and the
# rollback drill (bad swap reverted within one window).
drift-drill:
	$(GO) run ./examples/drift
	$(GO) run ./examples/drift -force-bad-challenger
	$(GO) run ./examples/drift -rollback-drill

# Fleet-scale scheduler scenario (DESIGN.md §3i): the 12-node
# consolidation drill — decisions from estimates only, physically
# verified, with an asserted energy margin over naive static placement
# — followed by the 1,000-node sharded stepping smoke. `make
# fleet-smoke` is the CI variant: the 1k run twice under -race at
# different worker counts, compared byte-for-byte.
fleet:
	$(GO) run ./examples/fleet
	$(GO) run ./examples/fleet -smoke 1000

fleet-smoke:
	$(GO) run -race ./examples/fleet -smoke 1000 -workers 2 > /tmp/fleet_smoke_a.out
	$(GO) run -race ./examples/fleet -smoke 1000 -workers 8 > /tmp/fleet_smoke_b.out
	cmp /tmp/fleet_smoke_a.out /tmp/fleet_smoke_b.out

# Trace-driven replay & multi-tenant/diurnal scenarios (DESIGN.md §3j):
# `make replay` records a 12-workload day as WTR1 traces, replays each
# through the codec byte-identically and serves the replayed day;
# `make tenants` splits one node's estimated power across a 4-tenant
# cohort and gates on the metamorphic attribution battery;
# `make diurnal` runs the closed scheduler loop over a simulated day
# (consolidate at night, power back up on the morning ramp).
replay:
	$(GO) run ./examples/replay

tenants:
	$(GO) run ./examples/tenants

diurnal:
	$(GO) run ./examples/diurnal

loc:
	find . -name '*.go' | xargs wc -l | tail -1
